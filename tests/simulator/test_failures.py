"""Tests for failure injection."""

import pytest

from repro.availability.distributions import Deterministic, Exponential
from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.simulator.engine import Simulator
from repro.simulator.failures import FailureInjector
from repro.util.rng import RandomSource


def make_injector(seed=1):
    sim = Simulator()
    return sim, FailureInjector(sim, RandomSource(seed))


def interrupted_host(host_id="h0", mtbi=10.0, mu=2.0):
    return HostAvailability(
        host_id=host_id,
        arrival=Exponential(mean=mtbi),
        service=Exponential(mean=mu),
        group="test",
    )


class Recorder:
    def __init__(self):
        self.events = []

    def down(self, node_id, t):
        self.events.append(("down", node_id, t))

    def up(self, node_id, t):
        self.events.append(("up", node_id, t))


class TestAttachment:
    def test_dedicated_never_fails(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(HostAvailability(host_id="d"))
        sim.run(until=10000.0)
        assert rec.events == []
        assert not injector.is_down("d")

    def test_interrupted_host_cycles(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host())
        sim.run(until=500.0)
        downs = [e for e in rec.events if e[0] == "down"]
        ups = [e for e in rec.events if e[0] == "up"]
        assert len(downs) > 10
        assert abs(len(downs) - len(ups)) <= 1

    def test_down_up_alternate(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host())
        sim.run(until=300.0)
        kinds = [e[0] for e in rec.events]
        for a, b in zip(kinds, kinds[1:], strict=False):
            assert a != b, "down/up must alternate"

    def test_double_attach_rejected(self):
        _, injector = make_injector()
        injector.attach_host(interrupted_host())
        with pytest.raises(ValueError, match="already attached"):
            injector.attach_host(interrupted_host())

    def test_accounting(self):
        sim, injector = make_injector()
        injector.attach_host(interrupted_host())
        sim.run(until=1000.0)
        assert injector.episode_count("h0") > 0
        assert injector.downtime_total("h0") > 0.0


class TestTraceReplay:
    def test_exact_windows(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        trace = AvailabilityTrace("t0", 100.0, [(10.0, 15.0), (40.0, 42.0)])
        injector.attach_trace(trace)
        sim.run(until=100.0)
        assert rec.events == [
            ("down", "t0", 10.0),
            ("up", "t0", 15.0),
            ("down", "t0", 40.0),
            ("up", "t0", 42.0),
        ]

    def test_state_queries_during_replay(self):
        sim, injector = make_injector()
        trace = AvailabilityTrace("t0", 100.0, [(10.0, 20.0)])
        injector.attach_trace(trace)
        sim.run(until=12.0)
        assert injector.is_down("t0")
        sim.run(until=25.0)
        assert not injector.is_down("t0")


class TestBurnIn:
    def test_zero_burn_in_starts_up(self):
        sim, injector = make_injector()
        injector.attach_host(interrupted_host())
        assert not injector.is_down("h0")

    def test_burn_in_can_start_down(self):
        # A host down 90% of the time and a long burn-in: at t=0 it must
        # (for some seed) already be down, with the episode clipped to 0.
        found_down = False
        for seed in range(30):
            sim = Simulator()
            injector = FailureInjector(sim, RandomSource(seed))
            host = HostAvailability(
                host_id="h0",
                arrival=Exponential(mean=10.0),
                service=Deterministic(value=50.0),
                group="test",
            )
            injector.attach_host(host, burn_in=10_000.0)
            sim.run(until=0.0)
            if injector.is_down("h0"):
                found_down = True
                break
        assert found_down

    def test_burn_in_preserves_event_validity(self):
        sim, injector = make_injector(seed=9)
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host(), burn_in=500.0)
        sim.run(until=200.0)
        # Events stay ordered and alternating after the shift.
        times = [t for _k, _n, t in rec.events]
        assert times == sorted(times)
        kinds = [k for k, _n, _t in rec.events]
        for a, b in zip(kinds, kinds[1:], strict=False):
            assert a != b

    def test_negative_burn_in_rejected(self):
        _, injector = make_injector()
        with pytest.raises(ValueError):
            injector.attach_host(interrupted_host(), burn_in=-1.0)


class TestMultipleSubscribersOrder:
    def test_callbacks_in_subscription_order(self):
        sim, injector = make_injector()
        order = []
        injector.subscribe(on_down=lambda n, t: order.append("first"))
        injector.subscribe(on_down=lambda n, t: order.append("second"))
        injector.attach_trace(AvailabilityTrace("t", 10.0, [(1.0, 2.0)]))
        sim.run(until=1.5)
        assert order == ["first", "second"]


class TestPermanentFailures:
    def test_node_never_returns(self):
        sim, injector = make_injector()
        rec = Recorder()
        perms = []
        injector.subscribe(rec.down, rec.up, on_permanent=lambda n, t: perms.append((n, t)))
        injector.attach_host(interrupted_host())
        injector.schedule_permanent_failure("h0", at_time=50.0)
        sim.run(until=5000.0)
        assert perms == [("h0", 50.0)]
        assert injector.is_permanently_failed("h0")
        assert injector.is_down("h0")
        # No transition fires after the permanent loss.
        assert all(t <= 50.0 for _k, _n, t in rec.events)

    def test_permanent_while_already_down_fires_no_extra_down(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_trace(AvailabilityTrace("t0", 100.0, [(10.0, 20.0)]))
        injector.schedule_permanent_failure("t0", at_time=15.0)
        sim.run(until=100.0)
        assert rec.events == [("down", "t0", 10.0)]
        assert injector.is_down("t0")

    def test_second_permanent_failure_is_noop(self):
        sim, injector = make_injector()
        perms = []
        injector.subscribe(on_permanent=lambda n, t: perms.append(t))
        injector.attach_host(HostAvailability(host_id="h0"))
        injector.schedule_permanent_failure("h0", at_time=10.0)
        injector.schedule_permanent_failure("h0", at_time=20.0)
        sim.run(until=100.0)
        assert perms == [10.0]

    def test_unknown_node_rejected(self):
        _, injector = make_injector()
        with pytest.raises(KeyError):
            injector.schedule_permanent_failure("ghost", at_time=1.0)


class TestCorrelatedOutage:
    def test_all_nodes_drop_and_return_together(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        for i in range(3):
            injector.attach_host(HostAvailability(host_id=f"h{i}"))
        injector.schedule_outage(["h0", "h1", "h2"], start=10.0, duration=5.0)
        sim.run(until=100.0)
        downs = sorted(e for e in rec.events if e[0] == "down")
        ups = sorted(e for e in rec.events if e[0] == "up")
        assert downs == [("down", f"h{i}", 10.0) for i in range(3)]
        assert ups == [("up", f"h{i}", 15.0) for i in range(3)]

    def test_outage_skips_already_down_node(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_trace(AvailabilityTrace("t0", 100.0, [(5.0, 30.0)]))
        injector.attach_trace(AvailabilityTrace("t1", 100.0, []))
        injector.schedule_outage(["t0", "t1"], start=10.0, duration=5.0)
        sim.run(until=100.0)
        # t0's own episode governs its return; t1 follows the outage.
        assert ("up", "t0", 30.0) in rec.events
        assert ("up", "t1", 15.0) in rec.events
        assert [e for e in rec.events if e[0] == "down" and e[1] == "t0"] == [
            ("down", "t0", 5.0)
        ]

    def test_rejects_nonpositive_duration(self):
        _, injector = make_injector()
        injector.attach_host(HostAvailability(host_id="h0"))
        with pytest.raises(ValueError):
            injector.schedule_outage(["h0"], start=1.0, duration=0.0)


class TestInjectorTeardown:
    def test_stop_silences_everything(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host())
        injector.schedule_outage(["h0"], start=500.0, duration=5.0)
        injector.schedule_permanent_failure("h0", at_time=600.0)
        sim.run(until=100.0)
        fired_before = len(rec.events)
        assert fired_before > 0
        injector.stop()
        assert injector.stopped
        sim.run(until=5000.0)
        assert len(rec.events) == fired_before
        assert not injector.is_permanently_failed("h0")


class TestIdempotentTransitions:
    """Overlapping injected outages must not double-publish or double-count."""

    def test_overlapping_outages_publish_one_down_up_pair(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(HostAvailability(host_id="h0"))
        injector.schedule_outage(["h0"], start=10.0, duration=20.0)
        injector.schedule_outage(["h0"], start=15.0, duration=30.0)
        sim.run(until=100.0)
        # The second outage folds into the first (the node was already
        # down); its end event is never armed, so exactly one pair fires.
        assert rec.events == [("down", "h0", 10.0), ("up", "h0", 30.0)]
        assert injector.episode_count("h0") == 1
        assert injector.downtime_total("h0") == pytest.approx(20.0)

    def test_outage_overlapping_stream_episode_keeps_stream_alive(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        trace = AvailabilityTrace("t0", 1000.0, [(10.0, 30.0), (60.0, 70.0)])
        injector.attach_trace(trace)
        injector.schedule_outage(["t0"], start=5.0, duration=10.0)
        sim.run(until=1000.0)
        downs = [e for e in rec.events if e[0] == "down"]
        ups = [e for e in rec.events if e[0] == "up"]
        # The stream's (10,30) episode folds into the injected (5,15)
        # outage, yet the stream keeps advancing to its (60,70) episode.
        assert downs == [("down", "t0", 5.0), ("down", "t0", 60.0)]
        assert ups == [("up", "t0", 15.0), ("up", "t0", 70.0)]
        assert not injector.is_down("t0")

    def test_downtime_accounts_actual_elapsed_window(self):
        sim, injector = make_injector()
        injector.attach_trace(AvailabilityTrace("t0", 1000.0, [(10.0, 30.0)]))
        sim.run(until=1000.0)
        assert injector.downtime_total("t0") == pytest.approx(20.0)


class TestRecoveryStretch:
    def test_stretch_applies_to_episodes_beginning_inside_window(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_trace(AvailabilityTrace("t0", 1000.0, [(10.0, 20.0)]))
        injector.set_recovery_stretch("t0", 3.0)
        sim.run(until=1000.0)
        # Sampled 10s of downtime, served 30s.
        assert rec.events == [("down", "t0", 10.0), ("up", "t0", 40.0)]
        assert injector.downtime_total("t0") == pytest.approx(30.0)

    def test_stretch_spares_episode_already_in_progress(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_trace(AvailabilityTrace("t0", 1000.0, [(10.0, 20.0)]))
        sim.schedule_at(15.0, lambda: injector.set_recovery_stretch("t0", 5.0))
        sim.run(until=1000.0)
        assert rec.events == [("down", "t0", 10.0), ("up", "t0", 20.0)]

    def test_cleared_stretch_restores_sampled_durations(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_trace(
            AvailabilityTrace("t0", 1000.0, [(10.0, 20.0), (100.0, 110.0)])
        )
        injector.set_recovery_stretch("t0", 2.0)
        sim.schedule_at(50.0, lambda: injector.clear_recovery_stretch("t0"))
        sim.run(until=1000.0)
        ups = [e for e in rec.events if e[0] == "up"]
        assert ups == [("up", "t0", 30.0), ("up", "t0", 110.0)]

    def test_stretch_validation(self):
        _, injector = make_injector()
        injector.attach_host(HostAvailability(host_id="h0"))
        with pytest.raises(ValueError):
            injector.set_recovery_stretch("h0", 0.5)
        with pytest.raises(KeyError):
            injector.set_recovery_stretch("ghost", 2.0)
        # Clearing an unset stretch is a no-op.
        injector.clear_recovery_stretch("h0")


class TestPregenerateClosesSource:
    """Regression: _pregenerate must release the source generator even
    when the materialised prefix is empty — a suspended frame per host is
    hundreds of megabytes at fleet scale."""

    @staticmethod
    def _spy_stream(episodes):
        state = {"closed": False}

        def gen():
            try:
                yield from episodes
            finally:
                state["closed"] = True

        return gen(), state

    def test_source_closed_after_normal_prefix(self):
        from repro.availability.process import DowntimeEpisode

        stream, state = self._spy_stream(
            [DowntimeEpisode(10.0, 12.0, 1), DowntimeEpisode(50.0, 51.0, 1)]
        )
        materialised = FailureInjector._pregenerate(stream, 20.0)
        assert state["closed"]
        assert [e.start for e in materialised] == [10.0, 50.0]

    def test_source_closed_for_empty_prefix(self):
        # Horizon 0 with an exhausted source: nothing materialises, yet
        # the generator must still be closed.
        stream, state = self._spy_stream([])
        materialised = FailureInjector._pregenerate(stream, 0.0)
        assert list(materialised) == []
        assert state["closed"]

    def test_attach_with_pregen_closes_generator(self):
        sim, injector = make_injector()
        injector.attach_host(interrupted_host(), pregen_horizon=100.0)
        # The per-host stream is a plain list iterator now — advancing the
        # sim never resumes a suspended generator frame.
        sim.run(until=100.0)
        assert injector.episode_count("h0") > 0

    def test_pregen_horizon_zero_still_delivers_boundary_episode(self):
        # Contract: the first episode at/past the horizon is kept, so even
        # horizon=0 schedules the host's first interruption.
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host(), pregen_horizon=0.0)
        sim.run(until=50.0)
        assert any(e[0] == "down" for e in rec.events)


class TestInjectedEpisodePrefix:
    """attach_host(episodes=...): bulk pregeneration's injection path."""

    def _prefix(self, host, seed, horizon, burn_in=0.0):
        from repro.availability.pregen import episode_prefix

        return episode_prefix(host, RandomSource(seed), horizon, burn_in=burn_in)

    def test_injected_prefix_matches_internal_pregen(self):
        horizon = 300.0
        events = []
        for mode in ("internal", "injected"):
            sim = Simulator()
            injector = FailureInjector(sim, RandomSource(1))
            rec = Recorder()
            injector.subscribe(rec.down, rec.up)
            if mode == "internal":
                injector.attach_host(interrupted_host(), pregen_horizon=horizon)
            else:
                prefix = self._prefix(interrupted_host(), 1, horizon)
                injector.attach_host(interrupted_host(), episodes=prefix)
            sim.run(until=horizon)
            events.append(rec.events)
        assert events[0] == events[1]

    def test_injected_prefix_with_burn_in_matches(self):
        horizon, burn_in = 300.0, 77.0
        events = []
        for mode in ("internal", "injected"):
            sim = Simulator()
            injector = FailureInjector(sim, RandomSource(2))
            rec = Recorder()
            injector.subscribe(rec.down, rec.up)
            if mode == "internal":
                injector.attach_host(
                    interrupted_host(), burn_in=burn_in, pregen_horizon=horizon
                )
            else:
                prefix = self._prefix(interrupted_host(), 2, horizon, burn_in)
                injector.attach_host(interrupted_host(), episodes=prefix)
            sim.run(until=horizon)
            events.append(rec.events)
        assert events[0] == events[1]

    def test_episodes_excludes_other_knobs(self):
        _, injector = make_injector()
        from repro.availability.process import DowntimeEpisode

        prefix = [DowntimeEpisode(1.0, 2.0, 1)]
        with pytest.raises(ValueError, match="cannot be combined"):
            injector.attach_host(interrupted_host(), episodes=prefix, burn_in=5.0)
        with pytest.raises(ValueError, match="cannot be combined"):
            injector.attach_host(
                interrupted_host(), episodes=prefix, pregen_horizon=10.0
            )

    def test_empty_prefix_means_never_interrupted(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host(), episodes=[])
        sim.run(until=1000.0)
        assert rec.events == []
        assert not injector.is_down("h0")
