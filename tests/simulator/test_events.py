"""Tests for the typed, phase-ordered event bus."""

import pytest

from repro.simulator.events import (
    BlockLost,
    Event,
    EventBus,
    NodeDown,
    NodeEvent,
    NodeUp,
    Phase,
    ReplicaAdded,
    TaskStateChange,
)


class TestPhaseOrdering:
    def test_phases_run_in_declared_order_not_subscription_order(self):
        bus = EventBus()
        order = []
        # Subscribe in deliberately scrambled phase order.
        bus.subscribe(NodeDown, lambda e: order.append("sched"), Phase.SCHEDULING)
        bus.subscribe(NodeDown, lambda e: order.append("acct"), Phase.ACCOUNTING)
        bus.subscribe(NodeDown, lambda e: order.append("net"), Phase.NETWORK)
        bus.subscribe(NodeDown, lambda e: order.append("storage"), Phase.STORAGE)
        bus.subscribe(NodeDown, lambda e: order.append("detect"), Phase.DETECTION)
        bus.subscribe(NodeDown, lambda e: order.append("compute"), Phase.COMPUTE)
        bus.publish(NodeDown(time=1.0, node_id="n1"))
        assert order == ["acct", "storage", "compute", "net", "detect", "sched"]

    def test_within_phase_subscription_order_preserved(self):
        bus = EventBus()
        order = []
        for tag in "abcd":
            bus.subscribe(NodeUp, lambda e, t=tag: order.append(t), Phase.STORAGE)
        bus.publish(NodeUp(time=0.0, node_id="n1"))
        assert order == list("abcd")

    def test_phase_enum_covers_expected_sequence(self):
        assert [p.name for p in sorted(Phase)] == [
            "ACCOUNTING",
            "STORAGE",
            "COMPUTE",
            "NETWORK",
            "DETECTION",
            "SCHEDULING",
        ]


class TestTypeMatching:
    def test_exact_type_only_no_subclass_dispatch(self):
        bus = EventBus()
        hits = []
        bus.subscribe(NodeEvent, lambda e: hits.append("base"), Phase.STORAGE)
        bus.subscribe(NodeDown, lambda e: hits.append("down"), Phase.STORAGE)
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        assert hits == ["down"]

    def test_unrelated_types_not_delivered(self):
        bus = EventBus()
        hits = []
        bus.subscribe(NodeDown, hits.append, Phase.STORAGE)
        bus.publish(NodeUp(time=0.0, node_id="n1"))
        assert hits == []

    def test_subscribe_rejects_non_event_type(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(str, lambda e: None, Phase.STORAGE)
        with pytest.raises(TypeError):
            bus.subscribe(NodeDown(time=0.0, node_id="x"), lambda e: None, Phase.STORAGE)


class TestKeyedRouting:
    def test_keyed_handler_only_sees_its_key(self):
        bus = EventBus()
        hits = []
        bus.subscribe(NodeDown, lambda e: hits.append(e.node_id), Phase.STORAGE, key="n1")
        bus.publish(NodeDown(time=0.0, node_id="n2"))
        assert hits == []
        bus.publish(NodeDown(time=1.0, node_id="n1"))
        assert hits == ["n1"]

    def test_keyed_and_unkeyed_merge_in_phase_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(NodeDown, lambda e: order.append("keyed-sched"), Phase.SCHEDULING, key="n1")
        bus.subscribe(NodeDown, lambda e: order.append("global-acct"), Phase.ACCOUNTING)
        bus.subscribe(NodeDown, lambda e: order.append("keyed-storage"), Phase.STORAGE, key="n1")
        bus.subscribe(NodeDown, lambda e: order.append("global-net"), Phase.NETWORK)
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        assert order == ["global-acct", "keyed-storage", "global-net", "keyed-sched"]

    def test_same_phase_keyed_vs_unkeyed_breaks_by_subscription_seq(self):
        bus = EventBus()
        order = []
        bus.subscribe(NodeDown, lambda e: order.append("first"), Phase.STORAGE, key="n1")
        bus.subscribe(NodeDown, lambda e: order.append("second"), Phase.STORAGE)
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        assert order == ["first", "second"]

    def test_block_events_route_by_block_id(self):
        bus = EventBus()
        hits = []
        bus.subscribe(BlockLost, lambda e: hits.append(e.block_id), Phase.SCHEDULING, key="b7")
        bus.publish(BlockLost(time=0.0, block_id="b3"))
        bus.publish(BlockLost(time=0.0, block_id="b7"))
        assert hits == ["b7"]
        assert ReplicaAdded(time=0.0, block_id="b7", node_id="n1").routing_key == "b7"
        assert TaskStateChange(time=0.0, task_id="t1", state="RUNNING").routing_key == "t1"


class TestNestedPublish:
    def test_nested_dispatch_completes_before_outer_resumes(self):
        bus = EventBus()
        order = []

        def storage_handler(event):
            order.append("outer-storage")
            bus.publish(BlockLost(time=event.time, block_id="b1"))

        bus.subscribe(NodeDown, storage_handler, Phase.STORAGE)
        bus.subscribe(NodeDown, lambda e: order.append("outer-sched"), Phase.SCHEDULING)
        bus.subscribe(BlockLost, lambda e: order.append("nested"), Phase.SCHEDULING)
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        # The nested BlockLost dispatch runs depth-first: its SCHEDULING
        # handler fires before the outer event reaches its own SCHEDULING.
        assert order == ["outer-storage", "nested", "outer-sched"]


class TestTaps:
    def test_tap_sees_every_event_before_handlers(self):
        bus = EventBus()
        order = []
        bus.add_tap(lambda e, phases: order.append(("tap", type(e).__name__, phases)))
        bus.subscribe(NodeDown, lambda e: order.append(("handler",)), Phase.NETWORK)
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        bus.publish(NodeUp(time=1.0, node_id="n1"))  # nobody subscribed
        assert order == [
            ("tap", "NodeDown", (Phase.NETWORK,)),
            ("handler",),
            ("tap", "NodeUp", ()),
        ]

    def test_tap_phase_tuple_lists_phases_with_handlers(self):
        bus = EventBus()
        seen = []
        bus.subscribe(NodeDown, lambda e: None, Phase.SCHEDULING)
        bus.subscribe(NodeDown, lambda e: None, Phase.ACCOUNTING)
        bus.subscribe(NodeDown, lambda e: None, Phase.ACCOUNTING)
        bus.add_tap(lambda e, phases: seen.append(phases))
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        assert seen == [(Phase.ACCOUNTING, Phase.SCHEDULING)]


class TestSubscriptionLifecycle:
    def test_cancel_detaches_handler(self):
        bus = EventBus()
        hits = []
        sub = bus.subscribe(NodeDown, hits.append, Phase.STORAGE)
        assert sub.active
        sub.cancel()
        assert not sub.active
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        assert hits == []

    def test_cancel_is_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe(NodeDown, lambda e: None, Phase.STORAGE)
        sub.cancel()
        sub.cancel()  # must not raise
        assert bus.handler_count(NodeDown) == 0

    def test_cancel_leaves_other_subscriptions(self):
        bus = EventBus()
        hits = []
        sub = bus.subscribe(NodeDown, lambda e: hits.append("a"), Phase.STORAGE)
        bus.subscribe(NodeDown, lambda e: hits.append("b"), Phase.STORAGE)
        sub.cancel()
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        assert hits == ["b"]


class TestIntrospection:
    def test_wants_reflects_subscriptions(self):
        bus = EventBus()
        assert not bus.wants(TaskStateChange)
        sub = bus.subscribe(TaskStateChange, lambda e: None, Phase.SCHEDULING)
        assert bus.wants(TaskStateChange)
        assert not bus.wants(NodeDown)
        sub.cancel()
        assert not bus.wants(TaskStateChange)

    def test_taps_make_everything_wanted(self):
        bus = EventBus()
        bus.add_tap(lambda e, phases: None)
        assert bus.wants(TaskStateChange)
        assert bus.wants(NodeDown)

    def test_counts(self):
        bus = EventBus()
        bus.subscribe(NodeDown, lambda e: None, Phase.STORAGE)
        bus.subscribe(NodeDown, lambda e: None, Phase.COMPUTE, key="n1")
        assert bus.handler_count(NodeDown) == 2
        assert bus.handler_count(NodeUp) == 0
        bus.publish(NodeDown(time=0.0, node_id="n1"))
        bus.publish(NodeDown(time=1.0, node_id="n2"))
        bus.publish(NodeUp(time=2.0, node_id="n1"))
        assert bus.published_count == 3
        # n1's down hits both handlers, n2's only the unkeyed one.
        assert bus.dispatched_count == 3

    def test_payload_flattens_all_fields(self):
        event = TaskStateChange(time=2.5, task_id="t1", state="RUNNING", node_id="n1")
        assert event.payload() == {
            "time": 2.5,
            "task_id": "t1",
            "state": "RUNNING",
            "node_id": "n1",
        }
        assert isinstance(event, Event)


class TestSubscribeMany:
    def test_dispatch_identical_to_loop_of_subscribe(self):
        keys = [f"n{i}" for i in range(6)]

        def wire_loop(bus, order):
            for key in keys:
                bus.subscribe(
                    NodeDown, lambda e, k=key: order.append(("d", k)), Phase.STORAGE, key=key
                )
                bus.subscribe(
                    NodeDown, lambda e, k=key: order.append(("c", k)), Phase.COMPUTE, key=key
                )

        def wire_bulk(bus, order):
            bus.subscribe_many(
                NodeDown,
                Phase.STORAGE,
                ((k, (lambda e, k=k: order.append(("d", k)))) for k in keys),
            )
            bus.subscribe_many(
                NodeDown,
                Phase.COMPUTE,
                ((k, (lambda e, k=k: order.append(("c", k)))) for k in keys),
            )

        results = []
        for wire in (wire_loop, wire_bulk):
            bus = EventBus()
            order = []
            bus.subscribe(NodeDown, lambda e: order.append(("acct", None)), Phase.ACCOUNTING)
            wire(bus, order)
            bus.subscribe(NodeDown, lambda e: order.append(("sched", None)), Phase.SCHEDULING)
            for key in keys:
                bus.publish(NodeDown(time=1.0, node_id=key))
            results.append(order)
        assert results[0] == results[1]

    def test_mixed_keyed_and_unkeyed(self):
        bus = EventBus()
        hits = []
        added = bus.subscribe_many(
            NodeUp,
            Phase.STORAGE,
            [
                (None, lambda e: hits.append("unkeyed")),
                ("n1", lambda e: hits.append("n1")),
            ],
        )
        assert added == 2
        bus.publish(NodeUp(time=0.0, node_id="n1"))
        bus.publish(NodeUp(time=1.0, node_id="n2"))
        assert hits == ["unkeyed", "n1", "unkeyed"]

    def test_unkeyed_cache_invalidated(self):
        bus = EventBus()
        hits = []
        bus.subscribe(NodeUp, lambda e: hits.append("first"), Phase.STORAGE)
        bus.publish(NodeUp(time=0.0, node_id="n1"))  # warms the cache
        bus.subscribe_many(
            NodeUp, Phase.STORAGE, [(None, lambda e: hits.append("second"))]
        )
        bus.publish(NodeUp(time=1.0, node_id="n1"))
        assert hits == ["first", "first", "second"]

    def test_type_validated_once(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe_many(int, Phase.STORAGE, [(None, lambda e: None)])

    def test_counts_and_wants(self):
        bus = EventBus()
        bus.subscribe_many(
            NodeDown,
            Phase.COMPUTE,
            ((f"n{i}", (lambda e: None)) for i in range(5)),
        )
        assert bus.wants(NodeDown)
        assert bus.handler_count(NodeDown) == 5

    def test_empty_iterable_is_noop(self):
        bus = EventBus()
        assert bus.subscribe_many(NodeDown, Phase.COMPUTE, []) == 0
        assert not bus.wants(NodeDown)
