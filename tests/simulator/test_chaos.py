"""Chaos engine: golden primitive runs, seed stability, trace replay.

Each of the five scenario primitives runs end-to-end under
``audit="strict"`` — the cross-layer invariant auditor raises on the
first violation, so a passing test certifies the injection paths keep
every accounting and replica-map invariant intact. The pinned
:class:`~repro.simulator.chaos.ResilienceReport` numbers are golden:
exact ``==`` on floats, like the golden-determinism suite, so any
trajectory change under chaos shows up as a failure, not a wobble.
"""

import json

import pytest

from repro.availability.generator import HostAvailability
from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.simulator.scenarios import (
    ChaosCampaign,
    DelayedRecovery,
    FailureStorm,
    FlappingNode,
    GrayNode,
    NetworkPartition,
)

#: node-00000..3 are the Table 2 interruption groups; 4..7 are dedicated.
DEDICATED = ("node-00004", "node-00005", "node-00006")


def run_primitive(scenario, replicas=1, monitor=False, seed=7, **kw):
    campaign = ChaosCampaign(name=f"golden-{scenario.kind}", scenarios=(scenario,))
    config = EmulationConfig(
        node_count=8,
        interrupted_ratio=0.5,
        blocks_per_node=2.0,
        seed=seed,
        replication_monitor=monitor,
    )
    return run_emulation_point(
        config, Strategy("adapt", replicas), audit="strict", chaos=campaign, **kw
    )


@pytest.mark.slow
class TestGoldenPrimitives:
    def test_failure_storm(self):
        # Storm on the dedicated nodes (the interrupted groups are often
        # already down, which would fold the outage away): 250s of
        # correlated loss, replication 2 + monitor, so the re-replication
        # lag metrics are exercised end to end.
        result = run_primitive(
            FailureStorm(start=40.0, duration=250.0, stagger=1.0, nodes=DEDICATED),
            replicas=2,
            monitor=True,
        )
        r = result.resilience
        assert r.activations[0].targets == DEDICATED
        assert r.makespan == 323.2957425730663
        assert (r.interruptions, r.node_returns) == (52, 51)
        assert r.detections == 17
        assert r.mean_time_to_detect == 7.766668779619971
        assert r.max_time_to_detect == 8.920292277198907
        assert r.undetected_downs == 0
        assert r.rereplications == 3
        assert r.mean_time_to_rereplicate == 171.5031874307551
        assert r.max_time_to_rereplicate == 241.1212714383978
        assert r.unrecovered_blocks == 0

    def test_flapping_node(self):
        result = run_primitive(
            FlappingNode(start=30.0, cycles=4, down_time=4.0, up_time=4.0, count=2)
        )
        r = result.resilience
        assert r.activations[0].targets == ("node-00000", "node-00003")
        assert r.makespan == 158.21772800000002
        assert (r.interruptions, r.node_returns) == (31, 29)
        assert r.detections == 9
        assert r.mean_time_to_detect == 7.688210000206122
        # 4s flaps sit under the 9s heartbeat timeout: at least one down
        # was never detected before the run ended.
        assert r.undetected_downs == 1

    def test_network_partition(self):
        result = run_primitive(
            NetworkPartition(start=30.0, duration=50.0, isolate_heartbeats=True, count=2)
        )
        r = result.resilience
        assert r.activations[0].targets == ("node-00000", "node-00003")
        assert r.makespan == 167.626241028512
        assert (r.interruptions, r.node_returns) == (29, 28)
        assert r.detections == 10
        assert r.mean_time_to_detect == 7.767146027273313
        assert r.undetected_downs == 0

    def test_gray_node(self):
        result = run_primitive(
            GrayNode(start=20.0, duration=120.0, link_factor=0.5, exec_factor=4.0, count=2)
        )
        r = result.resilience
        assert r.activations[0].targets == ("node-00000", "node-00003")
        assert r.makespan == 364.9591250239302
        assert (r.interruptions, r.node_returns) == (58, 56)
        assert r.detections == 17
        assert r.mean_time_to_detect == 7.7090639122168225
        assert r.undetected_downs == 1

    def test_delayed_recovery(self):
        result = run_primitive(
            DelayedRecovery(start=0.0, duration=200.0, stretch=4.0, count=4)
        )
        r = result.resilience
        assert r.activations[0].targets == (
            "node-00000",
            "node-00003",
            "node-00001",
            "node-00004",
        )
        assert r.makespan == 298.25196798601576
        assert (r.interruptions, r.node_returns) == (40, 38)
        assert r.detections == 9
        assert r.mean_time_to_detect == 7.861459081604518
        assert r.max_time_to_detect == 9.0
        assert r.undetected_downs == 0


class TestSeedStability:
    def test_two_runs_produce_identical_reports(self):
        scenario = NetworkPartition(
            start=30.0, duration=50.0, isolate_heartbeats=True, count=2
        )
        first = run_primitive(scenario)
        second = run_primitive(scenario)
        assert first.resilience == second.resilience
        assert first.resilience.to_json() == second.resilience.to_json()
        assert first.elapsed == second.elapsed

    def test_chaos_does_not_perturb_the_chaos_free_trajectory(self):
        # A campaign armed entirely after the job finishes must leave the
        # trajectory byte-identical to a run with no campaign at all: the
        # chaos machinery adds no hidden RNG draws or event reorderings.
        config = EmulationConfig(
            node_count=8, interrupted_ratio=0.5, blocks_per_node=2.0, seed=7
        )
        plain = run_emulation_point(config, Strategy("adapt", 1))
        idle = ChaosCampaign(
            name="after-the-fact",
            scenarios=(FailureStorm(start=1e7, duration=10.0, nodes=DEDICATED),),
        )
        shadowed = run_emulation_point(
            config, Strategy("adapt", 1), audit="strict", chaos=idle
        )
        assert shadowed.elapsed == plain.elapsed
        assert shadowed.breakdown == plain.breakdown
        assert shadowed.data_locality == plain.data_locality


class TestTraceReplay:
    def test_campaign_runs_are_trace_byte_identical(self, tmp_path):
        scenario = GrayNode(
            start=20.0, duration=60.0, link_factor=0.5, exec_factor=4.0, count=2
        )
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        run_primitive(scenario, trace_out=str(first))
        run_primitive(scenario, trace_out=str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_trace_carries_scenario_specs(self, tmp_path):
        scenario = NetworkPartition(
            start=30.0, duration=50.0, isolate_heartbeats=True, count=2
        )
        out = tmp_path / "trace.jsonl"
        run_primitive(scenario, trace_out=str(out))
        records = [json.loads(line) for line in out.read_text().splitlines()]
        started = [r for r in records if r["type"] == "ChaosScenarioStarted"]
        ended = [r for r in records if r["type"] == "ChaosScenarioEnded"]
        assert len(started) == 1 and len(ended) == 1
        assert started[0]["payload"]["kind"] == "partition"
        spec = json.loads(started[0]["payload"]["spec"])
        assert spec == scenario.to_jsonable()
        partitions = [r for r in records if r["type"] == "PartitionStarted"]
        assert partitions and partitions[0]["payload"]["heartbeats_blocked"] is True


class TestEngineLifecycle:
    def build(self, campaign):
        hosts = [HostAvailability(host_id=f"n{i}") for i in range(3)]
        config = ClusterConfig(seed=1, chaos=campaign)
        return build_cluster(hosts, config, default_gamma=10.0)

    def test_start_is_idempotent(self):
        campaign = ChaosCampaign(
            name="idem", scenarios=(FailureStorm(start=5.0, duration=10.0, nodes=("n0",)),)
        )
        cluster = self.build(campaign)
        assert len(cluster.chaos.activations) == 1
        cluster.chaos.start()
        assert len(cluster.chaos.activations) == 1
        cluster.stop()

    def test_stop_disarms_pending_scenarios(self):
        campaign = ChaosCampaign(
            name="disarm",
            scenarios=(FailureStorm(start=50.0, duration=10.0, nodes=("n0",)),),
        )
        cluster = self.build(campaign)
        cluster.sim.run(until=10.0)
        cluster.stop()
        cluster.sim.run(until=100.0)
        assert not cluster.injector.is_down(cluster.ids.id_of("n0"))

    def test_report_baseline_folding(self):
        campaign = ChaosCampaign(
            name="slo",
            scenarios=(FailureStorm(start=5.0, duration=10.0, nodes=("n0",)),),
            slo_factor=1.5,
        )
        cluster = self.build(campaign)
        cluster.sim.run(until=30.0)
        report = cluster.chaos.report(makespan=120.0)
        folded = report.with_baseline(100.0)
        assert folded.makespan_inflation == pytest.approx(1.2)
        assert folded.slo_attained is True
        blown = report.with_baseline(60.0)
        assert blown.slo_attained is False
        with pytest.raises(ValueError):
            report.with_baseline(0.0)
        cluster.stop()
