"""Tests for the overhead decomposition accounting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.metrics import MapPhaseMetrics, OverheadBreakdown


def full_metrics():
    m = MapPhaseMetrics()
    m.add_base(100.0)
    m.add_useful(100.0)
    m.add_rework(10.0)
    m.add_recovery(20.0)
    m.add_migration(15.0)
    m.add_duplicate(5.0)
    m.add_idle(30.0)
    m.record_completion(local=True)
    m.record_completion(local=True)
    m.record_completion(local=False)
    return m


class TestAccumulation:
    def test_counts(self):
        m = full_metrics()
        assert m.total_tasks == 3
        assert m.local_tasks == 2
        assert m.failed_attempts == 1
        assert m.migrations == 1

    def test_locality(self):
        m = full_metrics()
        assert m.data_locality == pytest.approx(2.0 / 3.0)

    def test_locality_without_tasks_is_nan(self):
        # Zero completions (every task abandoned after total data loss):
        # the ratio is undefined, but reporting must not abort.
        assert math.isnan(MapPhaseMetrics().data_locality)

    def test_negative_rejected(self):
        m = MapPhaseMetrics()
        with pytest.raises(ValueError):
            m.add_rework(-1.0)


class TestBreakdown:
    def test_ratios(self):
        m = full_metrics()
        # 2 slots x 90s makespan = 180 slot-seconds.
        b = m.breakdown(makespan=90.0, slots=2)
        r = b.ratios()
        assert r["rework"] == pytest.approx(0.10)
        assert r["recovery"] == pytest.approx(0.20)
        assert r["migration"] == pytest.approx(0.15)
        # misc = slot_time - useful - rework - recovery - migration
        #      = 180 - 100 - 10 - 20 - 15 = 35 -> 0.35.
        assert r["misc"] == pytest.approx(0.35)
        assert r["total"] == pytest.approx(0.80)

    def test_conservation_residual(self):
        m = full_metrics()
        b = m.breakdown(makespan=90.0, slots=2)
        # 180 - (100+10+20+15+5+30) = 0.
        assert b.conservation_residual() == pytest.approx(0.0)

    def test_misc_never_negative(self):
        m = MapPhaseMetrics()
        m.add_base(10.0)
        m.add_useful(10.0)
        m.record_completion(local=True)
        b = m.breakdown(makespan=1.0, slots=5)  # slot time < useful: clamp
        assert b.misc == 0.0

    def test_misc_raw_surfaces_clamped_remainder(self):
        # Regression: the display clamp used to hide a negative remainder
        # (double-charged slot time). misc_raw keeps the signed value so
        # audits can see what the clamp swallowed.
        m = MapPhaseMetrics()
        m.add_base(10.0)
        m.add_useful(10.0)
        m.record_completion(local=True)
        b = m.breakdown(makespan=1.0, slots=5)  # slot_time 5 < useful 10
        assert b.misc == 0.0
        assert b.misc_raw == pytest.approx(-5.0)

    def test_misc_raw_equals_misc_when_positive(self):
        m = full_metrics()
        b = m.breakdown(makespan=90.0, slots=2)
        assert b.misc_raw == pytest.approx(b.misc)
        assert b.misc_raw == pytest.approx(35.0)

    def test_breakdown_emits_with_all_tasks_abandoned(self):
        # Total data loss: base work was submitted but nothing completed.
        # Locality is NaN yet the breakdown must still emit its row.
        m = MapPhaseMetrics()
        m.add_base(50.0)
        m.add_rework(7.0)
        b = m.breakdown(makespan=20.0, slots=2)
        assert math.isnan(b.data_locality)
        assert b.rework == pytest.approx(7.0)
        assert b.slot_time == pytest.approx(40.0)

    def test_requires_base_work(self):
        m = MapPhaseMetrics()
        with pytest.raises(ValueError, match="base work"):
            m.breakdown(makespan=1.0, slots=1)

    def test_requires_positive_slots(self):
        m = full_metrics()
        with pytest.raises(ValueError):
            m.breakdown(makespan=1.0, slots=0)

    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100)
    def test_total_is_sum_of_components(self, base, rework, recovery, migration, slots):
        m = MapPhaseMetrics()
        m.add_base(base)
        m.add_useful(base)
        m.add_rework(rework)
        m.add_recovery(recovery)
        m.add_migration(migration)
        m.record_completion(local=True)
        makespan = (base + rework + recovery + migration) / slots + 1.0
        b = m.breakdown(makespan=makespan, slots=slots)
        r = b.ratios()
        assert r["total"] == pytest.approx(
            r["rework"] + r["recovery"] + r["migration"] + r["misc"]
        )
