"""Edge cases for the network model beyond the basics."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.network import Network, TransferState


class TestZeroAndTiny:
    def test_zero_size_completes_immediately(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        done = []
        net.start_transfer("a", "b", 0.0, done.append)
        sim.run()
        assert len(done) == 1
        assert done[0].finished_at == 0.0

    def test_tiny_transfer(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=1e9)
        done = []
        net.start_transfer("a", "b", 1.0, done.append)
        sim.run()
        assert done[0].duration == pytest.approx(1e-9)


class TestManyFlows:
    def test_fifty_flows_one_source_conserve_bytes(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=1000.0, fair_sharing=True)
        done = []
        for i in range(50):
            net.start_transfer("hot", f"d{i}", 200.0, done.append)
        sim.run()
        assert len(done) == 50
        # 50 x 200 bytes through a 1000 B/s uplink needs exactly 10s.
        assert max(t.finished_at for t in done) == pytest.approx(10.0)

    def test_chain_of_dependent_transfers(self):
        # Each completion triggers the next; total time is the serial sum.
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        finished = []

        def start(i):
            if i >= 5:
                return
            net.start_transfer(
                "a", "b", 100.0, lambda t: (finished.append(t), start(i + 1))
            )

        start(0)
        sim.run()
        assert len(finished) == 5
        assert finished[-1].finished_at == pytest.approx(5.0)


class TestDynamicCapacity:
    def test_per_node_overrides(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        net.set_link("fast", uplink_bps=1000.0)
        assert net.uplink("fast") == 1000.0
        assert net.uplink("other") == 100.0
        with pytest.raises(ValueError):
            net.set_link("bad", uplink_bps=0.0)

    def test_rates_zero_after_terminal(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        done = []
        t = net.start_transfer("a", "b", 100.0, done.append)
        sim.run()
        assert t.rate == 0.0
        assert t.state is TransferState.COMPLETED

    def test_duration_unavailable_while_active(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        t = net.start_transfer("a", "b", 1e9, lambda _t: None)
        with pytest.raises(ValueError):
            _ = t.duration


class TestCancellationStorm:
    def test_cancel_all_then_reuse(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, fair_sharing=True)
        cancelled = []
        for i in range(10):
            net.start_transfer("s", f"d{i}", 1000.0, lambda t: None, cancelled.append)
        for t in net.active_transfers:
            net.cancel(t)
        assert len(cancelled) == 10
        assert net.active_transfers == []
        # The network stays usable afterwards.
        done = []
        net.start_transfer("s", "fresh", 100.0, done.append)
        sim.run()
        assert len(done) == 1
