"""Edge cases for the network model beyond the basics."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.network import Network, TransferState


class TestZeroAndTiny:
    def test_zero_size_completes_immediately(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        done = []
        net.start_transfer("a", "b", 0.0, done.append)
        sim.run()
        assert len(done) == 1
        assert done[0].finished_at == 0.0

    def test_tiny_transfer(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=1e9)
        done = []
        net.start_transfer("a", "b", 1.0, done.append)
        sim.run()
        assert done[0].duration == pytest.approx(1e-9)


class TestManyFlows:
    def test_fifty_flows_one_source_conserve_bytes(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=1000.0, fair_sharing=True)
        done = []
        for i in range(50):
            net.start_transfer("hot", f"d{i}", 200.0, done.append)
        sim.run()
        assert len(done) == 50
        # 50 x 200 bytes through a 1000 B/s uplink needs exactly 10s.
        assert max(t.finished_at for t in done) == pytest.approx(10.0)

    def test_chain_of_dependent_transfers(self):
        # Each completion triggers the next; total time is the serial sum.
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        finished = []

        def start(i):
            if i >= 5:
                return
            net.start_transfer(
                "a", "b", 100.0, lambda t: (finished.append(t), start(i + 1))
            )

        start(0)
        sim.run()
        assert len(finished) == 5
        assert finished[-1].finished_at == pytest.approx(5.0)


class TestDynamicCapacity:
    def test_per_node_overrides(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        net.set_link("fast", uplink_bps=1000.0)
        assert net.uplink("fast") == 1000.0
        assert net.uplink("other") == 100.0
        with pytest.raises(ValueError):
            net.set_link("bad", uplink_bps=0.0)

    def test_rates_zero_after_terminal(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        done = []
        t = net.start_transfer("a", "b", 100.0, done.append)
        sim.run()
        assert t.rate == 0.0
        assert t.state is TransferState.COMPLETED

    def test_duration_unavailable_while_active(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        t = net.start_transfer("a", "b", 1e9, lambda _t: None)
        with pytest.raises(ValueError):
            _ = t.duration


class TestCancellationStorm:
    def test_cancel_all_then_reuse(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, fair_sharing=True)
        cancelled = []
        for i in range(10):
            net.start_transfer("s", f"d{i}", 1000.0, lambda t: None, cancelled.append)
        for t in net.active_transfers:
            net.cancel(t)
        assert len(cancelled) == 10
        assert net.active_transfers == []
        # The network stays usable afterwards.
        done = []
        net.start_transfer("s", "fresh", 100.0, done.append)
        sim.run()
        assert len(done) == 1


class TestOutgoingBookkeeping:
    def test_counts_prune_to_zero_after_traffic(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        for i in range(3):
            net.start_transfer("s", f"d{i}", 100.0, lambda t: None)
        assert net.outgoing_count("s") == 3
        sim.run()
        assert net.outgoing_count("s") == 0
        # The internal map is pruned, not just zeroed.
        assert net._outgoing == {}

    def test_cancel_involving_both_roles(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        keep = net.start_transfer("a", "b", 1000.0, lambda t: None)
        as_source = net.start_transfer("x", "b", 1000.0, lambda t: None)
        as_dest = net.start_transfer("a", "x", 1000.0, lambda t: None)
        doomed = net.cancel_involving("x")
        assert set(doomed) == {as_source, as_dest}
        assert as_source.state is TransferState.CANCELLED
        assert as_dest.state is TransferState.CANCELLED
        assert net.active_transfers == [keep]
        assert net.outgoing_count("x") == 0

    def test_cancel_involving_uninvolved_node_is_noop(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0)
        t = net.start_transfer("a", "b", 1000.0, lambda t: None)
        assert net.cancel_involving("z") == []
        assert t.state is TransferState.ACTIVE


class TestZeroByteFairMode:
    def test_zero_size_amid_active_flows(self):
        # A zero-byte transfer must complete instantly without disturbing
        # the rates or the completion of concurrent nonzero flows.
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, fair_sharing=True)
        done = []
        net.start_transfer("a", "b", 1000.0, done.append)
        zero = net.start_transfer("a", "c", 0.0, done.append)
        assert zero.state is TransferState.COMPLETED
        assert zero.duration == 0.0
        sim.run()
        assert len(done) == 2
        assert done[-1].finished_at == pytest.approx(10.0)
        assert net.outgoing_count("a") == 0

    def test_zero_size_cancel_after_completion_is_noop(self):
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, fair_sharing=True)
        cancelled = []
        zero = net.start_transfer("a", "b", 0.0, lambda t: None, cancelled.append)
        net.cancel(zero)
        assert cancelled == []
        assert zero.state is TransferState.COMPLETED


class TestReentrantCompletion:
    def test_completion_callback_starting_transfer_does_not_double_fire(self):
        # Regression: two flows drain in the same sweep; the first one's
        # on_complete starts a new transfer, which re-enters the allocator
        # and finalizes the second flow *inside* the inner call. The outer
        # loop must not finalize it again (double callbacks would corrupt
        # the outgoing counts).
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, fair_sharing=True)
        completions = []

        def first_done(t):
            completions.append(t)
            net.start_transfer("c", "d", 50.0, completions.append)

        net.start_transfer("a", "b", 1000.0, first_done)
        net.start_transfer("b", "a", 1000.0, completions.append)
        sim.run()
        assert len(completions) == 3
        assert len(set(completions)) == 3, "a transfer completed twice"
        for node in ("a", "b", "c", "d"):
            assert net.outgoing_count(node) == 0

    def test_completion_callback_cancelling_sibling(self):
        # The first finisher cancels the second mid-finalization sweep: the
        # second must end CANCELLED, not COMPLETED, and fire only on_cancel.
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, fair_sharing=True)
        events = []
        second = None

        def first_done(t):
            events.append(("complete", t))
            net.cancel(second)

        net.start_transfer("a", "b", 1000.0, first_done)
        second = net.start_transfer(
            "b", "a", 1000.0,
            lambda t: events.append(("complete", t)),
            lambda t: events.append(("cancel", t)),
        )
        sim.run()
        kinds = sorted(k for k, _t in events)
        assert kinds == ["cancel", "complete"]
        assert second.state is TransferState.CANCELLED
        assert net.outgoing_count("a") == 0
        assert net.outgoing_count("b") == 0


class TestGrayThrottleRegressions:
    """Regressions from the gray-node throttle bugfix sweep (issue 9)."""

    def test_overlapping_throttles_stack(self):
        # Two gray windows overlap on one node: the second throttle must
        # compose, and the first window's restore must not lift the
        # second (the pre-fix code ignored the second throttle entirely).
        sim = Simulator()
        net = Network(sim, uplink_bps=1000.0, fair_sharing=False)
        net.throttle_node("a", 0.5)
        assert net.uplink("a") == 500.0
        assert net.downlink("a") == 500.0
        net.throttle_node("a", 0.5)  # second overlapping window
        assert net.uplink("a") == 250.0
        net.restore_node("a")  # first window ends; second still active
        assert net.uplink("a") == 500.0
        assert net.downlink("a") == 500.0
        net.restore_node("a")
        assert net.uplink("a") == 1000.0
        net.restore_node("a")  # spurious restore stays a no-op
        assert net.uplink("a") == 1000.0

    def test_overlapping_throttles_drive_transfer_rates(self):
        # The stacked product must reach in-flight rates, and each restore
        # must re-rate at the remaining stack, not at the base capacity.
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, fair_sharing=True)
        done = []
        transfer = net.start_transfer("a", "b", 1000.0, done.append)
        net.throttle_node("a", 0.5)
        net.throttle_node("a", 0.5)
        assert transfer.rate == 25.0
        net.restore_node("a")
        assert transfer.rate == 50.0
        net.restore_node("a")
        sim.run()
        assert done and transfer.state is TransferState.COMPLETED

    def test_set_link_during_throttle_survives_restore(self):
        # An operator capacity change made inside a gray window must
        # compose with the throttle while it lasts and survive the
        # restore (the pre-fix restore rewrote the pre-throttle entries,
        # silently discarding the override).
        sim = Simulator()
        net = Network(sim, uplink_bps=1000.0, fair_sharing=False)
        net.throttle_node("a", 0.5)
        net.set_link("a", uplink_bps=2000.0, downlink_bps=4000.0)
        assert net.uplink("a") == 1000.0  # 2000 * 0.5: override + throttle
        assert net.downlink("a") == 2000.0
        net.restore_node("a")
        assert net.uplink("a") == 2000.0
        assert net.downlink("a") == 4000.0


class TestSimpleModeEpsilon:
    """Simple-mode completion must honor _DONE_EPSILON like the fair path."""

    def test_sub_epsilon_residue_completes_at_thaw_time(self):
        # A transfer whose banked residue is within the done-epsilon must
        # complete the instant it thaws, not schedule a timed completion
        # for the residue (the fair path already treated it as finished).
        sim = Simulator()
        net = Network(sim, uplink_bps=1.0, fair_sharing=False)
        done = []
        transfer = net.start_transfer("a", "b", 100.4, done.append)
        sim.schedule(100.0, lambda: net.begin_partition("p", ("a",)))
        sim.schedule(110.0, lambda: net.end_partition("p"))
        sim.run()
        assert transfer.state is TransferState.COMPLETED
        assert transfer.remaining == 0.0
        assert transfer.finished_at == 110.0

    def test_many_partition_cycles_bank_progress_exactly_once(self):
        # Hundreds of freeze/thaw cycles bank progress through repeated
        # float subtraction; whatever error accumulates, a sub-epsilon
        # remainder must finish at the final heal, and the completion
        # callback must fire exactly once.
        sim = Simulator()
        net = Network(sim, uplink_bps=3.0, fair_sharing=False)
        done = []
        # 1000 up-windows of 0.1s at 3 B/s drain ~300 bytes; the extra
        # 0.2 bytes (plus accumulated float error) sit under the epsilon.
        transfer = net.start_transfer("a", "b", 300.2, done.append)
        for cycle in range(1000):
            sim.schedule(0.1 + cycle * 0.2, lambda: net.begin_partition("p", ("a",)))
            sim.schedule(0.2 + cycle * 0.2, lambda: net.end_partition("p"))
        sim.run()
        assert len(done) == 1
        assert transfer.state is TransferState.COMPLETED
        assert transfer.remaining == 0.0
        # Completed at (or before, if error banked fast) the final heal —
        # never a timed completion stretching past it.
        assert transfer.finished_at is not None
        assert transfer.finished_at <= 0.2 + 999 * 0.2
