"""Tests for the bus-event trace recorder and its JSONL export."""

import json

from repro.simulator.events import EventBus, NodeDown, NodeUp, Phase, ReplicaAdded
from repro.simulator.trace import TraceRecorder


def _bus_with_recorder():
    bus = EventBus()
    recorder = TraceRecorder(bus)
    return bus, recorder


class TestCapture:
    def test_records_in_publish_order(self):
        bus, recorder = _bus_with_recorder()
        bus.publish(NodeDown(time=1.0, node_id="n1"))
        bus.publish(NodeUp(time=2.0, node_id="n1"))
        assert len(recorder) == 2
        first, second = list(recorder)
        assert (first.seq, first.type, first.key, first.time) == (0, "NodeDown", "n1", 1.0)
        assert (second.seq, second.type, second.key, second.time) == (1, "NodeUp", "n1", 2.0)

    def test_record_carries_payload_and_phases(self):
        bus, recorder = _bus_with_recorder()
        bus.subscribe(NodeDown, lambda e: None, Phase.STORAGE)
        bus.subscribe(NodeDown, lambda e: None, Phase.SCHEDULING)
        bus.publish(NodeDown(time=3.0, node_id="n9"))
        (record,) = recorder.records
        assert record.phases == ("STORAGE", "SCHEDULING")
        assert record.payload == {"time": 3.0, "node_id": "n9"}

    def test_count_by_type_and_events_of(self):
        bus, recorder = _bus_with_recorder()
        bus.publish(NodeDown(time=0.0, node_id="a"))
        bus.publish(NodeDown(time=1.0, node_id="b"))
        bus.publish(ReplicaAdded(time=2.0, block_id="blk", node_id="a"))
        assert recorder.count_by_type() == {"NodeDown": 2, "ReplicaAdded": 1}
        assert [r.key for r in recorder.events_of(NodeDown)] == ["a", "b"]
        assert recorder.events_of(NodeUp) == []

    def test_stop_halts_capture_start_resumes(self):
        bus, recorder = _bus_with_recorder()
        bus.publish(NodeDown(time=0.0, node_id="a"))
        recorder.stop()
        bus.publish(NodeDown(time=1.0, node_id="b"))
        assert len(recorder) == 1  # b missed while stopped
        recorder.start()
        bus.publish(NodeDown(time=2.0, node_id="c"))
        assert [r.key for r in recorder] == ["a", "c"]

    def test_describe(self):
        bus, recorder = _bus_with_recorder()
        bus.publish(NodeDown(time=0.0, node_id="a"))
        info = recorder.describe()
        assert info["records"] == 1
        assert info["recording"] is True


class TestExport:
    def test_jsonl_round_trips(self, tmp_path):
        bus, recorder = _bus_with_recorder()
        bus.subscribe(NodeDown, lambda e: None, Phase.NETWORK)
        bus.publish(NodeDown(time=1.5, node_id="n1"))
        bus.publish(ReplicaAdded(time=2.5, block_id="blk-3", node_id="n2"))
        path = tmp_path / "trace.jsonl"
        assert recorder.export_jsonl(str(path)) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "seq": 0,
            "time": 1.5,
            "type": "NodeDown",
            "key": "n1",
            "phases": ["NETWORK"],
            "payload": {"time": 1.5, "node_id": "n1"},
        }
        second = json.loads(lines[1])
        assert second["type"] == "ReplicaAdded"
        assert second["payload"]["block_id"] == "blk-3"

    def test_empty_export(self, tmp_path):
        _bus, recorder = _bus_with_recorder()
        path = tmp_path / "empty.jsonl"
        assert recorder.export_jsonl(str(path)) == 0
        assert path.read_text() == ""
