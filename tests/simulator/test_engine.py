"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        for name in "abcde":
            sim.schedule(5.0, lambda n=name: order.append(n))
        sim.run()
        assert order == list("abcde")

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.schedule(7.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5, 7.0]
        assert sim.now == 7.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        hits = []

        def chain(n):
            hits.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_schedule_at(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(15.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [15.0]

    def test_rejects_past(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.9, lambda: None)

    def test_rejects_infinite_time(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_at(float("inf"), lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # must not raise

    def test_cancel_inside_event(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(2.0, lambda: fired.append("later"))
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []


class TestRunControl:
    def test_until_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        executed = sim.run(until=3.0)
        assert executed == 1
        assert fired == [1]
        # The clock stays at the last executed event.
        assert sim.now == 1.0
        sim.run()
        assert fired == [1, 5]

    def test_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=3.0)
        assert fired == [3]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(RuntimeError, match="re-entrant"):
            sim.run()

    def test_event_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestHeapHygiene:
    """Lazy cancellation must not let dead entries accumulate unboundedly."""

    def test_cancelled_pending_tracks_cancellations(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.cancelled_pending == 0
        for handle in handles[:4]:
            handle.cancel()
        assert sim.cancelled_pending == 4
        assert sim.pending_events == 10  # lazily cancelled, still in heap

    def test_pop_of_cancelled_entry_decrements_counter(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("live"))
        dead = sim.schedule(1.0, lambda: fired.append("dead"))
        dead.cancel()
        assert sim.cancelled_pending == 1
        sim.run()
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 0
        assert fired == ["live"]

    def test_heap_stays_bounded_under_rearm_churn(self):
        # The watchdog/sweep pattern: re-arm by cancelling the previous
        # event and scheduling a replacement. Without compaction the heap
        # holds every corpse until its time arrives.
        sim = Simulator()
        current = sim.schedule(1e9, lambda: None)
        for _ in range(10_000):
            current.cancel()
            current = sim.schedule(1e9, lambda: None)
        # One live event plus bounded garbage: compaction keeps the heap
        # under the size floor plus one round of churn, never 10k corpses.
        assert sim.pending_events < 200
        assert sim.cancelled_pending < 64

    def test_small_heaps_never_compact(self):
        # Below the size floor, compaction is pointless; cancelled entries
        # just wait for their pop.
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        assert sim.pending_events == 10
        assert sim.cancelled_pending == 10
        sim.run()
        assert sim.pending_events == 0

    def test_compaction_preserves_execution_order(self):
        sim = Simulator()
        order = []
        keep = []
        for i in range(200):
            handle = sim.schedule(float(i + 1), lambda i=i: order.append(i))
            if i % 2:
                keep.append(i)
            else:
                handle.cancel()  # triggers compaction partway through
        sim.run()
        assert order == keep


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_replay_identical(self, delays):
        def run():
            sim = Simulator()
            log = []
            for i, delay in enumerate(delays):
                sim.schedule(delay, lambda i=i: log.append((sim.now, i)))
            sim.run()
            return log

        assert run() == run()

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_time_never_regresses(self, delays):
        sim = Simulator()
        times = []
        for delay in delays:
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
