"""Tests for the hierarchical topology layer.

Covers the Topology protocol implementations themselves, the max-min
allocator's per-link capacity conservation over multi-hop paths, and the
tentpole's byte-identity promise: a degenerate Clos (one rack, no
oversubscription) must reproduce the flat star's trajectories exactly —
including the exported event trace, byte for byte.
"""

import random

import pytest

from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.simulator.engine import Simulator
from repro.simulator.network import Network
from repro.simulator.topology import (
    FABRIC_TIERS,
    TOPOLOGIES,
    ClosTopology,
    FlatStar,
    format_link_spec,
    make_topology,
    parse_link_spec,
)


class TestFlatStar:
    def test_path_is_two_access_links(self):
        assert FlatStar().path(3, 7) == (("up", 3), ("down", 7))

    def test_no_fabric(self):
        flat = FlatStar()
        assert flat.fabric_links() == ()
        with pytest.raises(KeyError):
            flat.fabric_capacity(("tor-up", 0))

    def test_single_rack_single_width(self):
        flat = FlatStar()
        assert flat.rack_of(42) == 0
        assert flat.link_width(("up", 42)) == 1


class TestClosShape:
    def test_same_rack_path_is_access_only(self):
        clos = ClosTopology(hosts=8, racks=4, host_uplink_bps=100.0)
        # 0 and 4 share rack 0 (round-robin assignment).
        assert clos.path(0, 4) == (("up", 0), ("down", 4))

    def test_cross_rack_path_crosses_both_tor_trunks(self):
        clos = ClosTopology(hosts=8, racks=4, host_uplink_bps=100.0)
        assert clos.path(0, 1) == (
            ("up", 0),
            ("tor-up", 0),
            ("tor-down", 1),
            ("down", 1),
        )

    def test_cross_pod_path_crosses_aggregation(self):
        clos = ClosTopology(hosts=8, racks=4, pods=2, host_uplink_bps=100.0)
        # rack 0 -> pod 0, rack 1 -> pod 1.
        assert clos.path(0, 1) == (
            ("up", 0),
            ("tor-up", 0),
            ("agg-up", 0),
            ("agg-down", 1),
            ("tor-down", 1),
            ("down", 1),
        )

    def test_same_pod_cross_rack_skips_aggregation(self):
        clos = ClosTopology(hosts=8, racks=4, pods=2, host_uplink_bps=100.0)
        # racks 0 and 2 both map to pod 0.
        assert clos.path(0, 2) == (
            ("up", 0),
            ("tor-up", 0),
            ("tor-down", 2),
            ("down", 2),
        )

    def test_round_robin_racks_stay_balanced(self):
        clos = ClosTopology(hosts=10, racks=3, host_uplink_bps=100.0)
        counts = {0: 0, 1: 0, 2: 0}
        for node in range(10):
            counts[clos.rack_of(node)] += 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_trunk_capacity_derives_from_shape(self):
        clos = ClosTopology(
            hosts=8,
            racks=2,
            host_uplink_bps=100.0,
            host_downlink_bps=200.0,
            oversubscription=4.0,
        )
        # 4 hosts per rack at 100 up / 200 down, oversubscribed 4:1.
        assert clos.fabric_capacity(("tor-up", 0)) == 100.0
        assert clos.fabric_capacity(("tor-down", 1)) == 200.0

    def test_aggregation_capacity_oversubscribes_twice(self):
        clos = ClosTopology(
            hosts=8, racks=4, pods=2, host_uplink_bps=100.0, oversubscription=2.0
        )
        # tor-up: 2 hosts * 100 / 2 = 100; agg-up: 2 racks * 100 / 2 = 100.
        assert clos.fabric_capacity(("agg-up", 0)) == 100.0

    def test_fabric_links_deterministic_order(self):
        clos = ClosTopology(hosts=8, racks=2, pods=2, host_uplink_bps=100.0)
        assert clos.fabric_links() == (
            ("tor-up", 0),
            ("tor-up", 1),
            ("tor-down", 0),
            ("tor-down", 1),
            ("agg-up", 0),
            ("agg-up", 1),
            ("agg-down", 0),
            ("agg-down", 1),
        )

    def test_single_pod_has_no_aggregation_links(self):
        clos = ClosTopology(hosts=8, racks=2, host_uplink_bps=100.0)
        assert all(link[0].startswith("tor") for link in clos.fabric_links())

    def test_trunk_width_applies_to_fabric_only(self):
        clos = ClosTopology(hosts=8, racks=2, host_uplink_bps=100.0, trunk_width=8)
        assert clos.link_width(("tor-up", 0)) == 8
        assert clos.link_width(("up", 3)) == 1

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(hosts=0, racks=1), "hosts"),
            (dict(hosts=4, racks=0), "racks"),
            (dict(hosts=4, racks=8), "racks"),
            (dict(hosts=8, racks=4, pods=8), "pods"),
            (dict(hosts=8, racks=4, trunk_width=0), "trunk_width"),
        ],
    )
    def test_shape_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ClosTopology(host_uplink_bps=100.0, **kwargs)


class TestLinkSpecs:
    def test_fabric_round_trip(self):
        for tier in FABRIC_TIERS:
            link = (tier, 3)
            assert parse_link_spec(format_link_spec(link)) == link

    def test_host_spec_with_numeric_id(self):
        assert parse_link_spec("up:17") == ("up", 17)

    def test_host_spec_interns_names(self):
        assert parse_link_spec("down:node-03", intern=lambda name: 3) == ("down", 3)

    def test_host_spec_keeps_name_without_interner(self):
        assert parse_link_spec("up:node-03") == ("up", "node-03")

    @pytest.mark.parametrize("spec", ["nonsense", "spine:1", "tor-up:abc", "up:"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_link_spec(spec)


class TestMakeTopology:
    def test_flat_by_name(self):
        assert isinstance(make_topology("flat", hosts=4, uplink_bps=100.0), FlatStar)

    def test_clos_by_name(self):
        topo = make_topology(
            "clos", hosts=8, uplink_bps=100.0, racks=2, oversubscription=2.0
        )
        assert isinstance(topo, ClosTopology)
        assert topo.racks == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="flat"):
            make_topology("hypercube", hosts=4, uplink_bps=100.0)

    def test_topologies_registry_covers_both(self):
        assert TOPOLOGIES == ("flat", "clos")


class TestPathCapacityConservation:
    """Randomized soak: max-min rates never oversubscribe any path link."""

    def _assert_conserved(self, net):
        sums = {}
        for transfer in net.active_transfers:
            for link in transfer.path:
                sums[link] = sums.get(link, 0.0) + transfer.rate
        for link, total in sums.items():
            assert total <= net.link_capacity(link) * (1.0 + 1e-9) + 1e-6, (
                f"link {link} oversubscribed: {total}"
            )

    def test_random_transfer_soak(self):
        rng = random.Random(1234)
        sim = Simulator()
        topo = ClosTopology(
            hosts=12, racks=3, host_uplink_bps=100.0, oversubscription=4.0
        )
        net = Network(
            sim, uplink_bps=100.0, fair_sharing=True, topology=topo
        )
        for _ in range(60):
            src, dst = rng.sample(range(12), 2)
            net.start_transfer(src, dst, rng.uniform(100.0, 5000.0), lambda t: None)
            if rng.random() < 0.7:
                sim.step()
            self._assert_conserved(net)
        while sim.step():
            self._assert_conserved(net)
        assert not net.active_transfers

    def test_oversubscribed_trunk_actually_binds(self):
        # 2 racks of 2 at 100 each, trunk oversubscribed 4:1 -> 50 total
        # cross-rack; two cross-rack flows share it at 25 apiece.
        sim = Simulator()
        topo = ClosTopology(
            hosts=4, racks=2, host_uplink_bps=100.0, oversubscription=4.0
        )
        net = Network(sim, uplink_bps=100.0, fair_sharing=True, topology=topo)
        a = net.start_transfer(0, 1, 1000.0, lambda t: None)
        b = net.start_transfer(2, 3, 1000.0, lambda t: None)
        assert a.rate == pytest.approx(25.0)
        assert b.rate == pytest.approx(25.0)

    def test_same_rack_traffic_dodges_the_trunk(self):
        sim = Simulator()
        topo = ClosTopology(
            hosts=4, racks=2, host_uplink_bps=100.0, oversubscription=4.0
        )
        net = Network(sim, uplink_bps=100.0, fair_sharing=True, topology=topo)
        # 0 and 2 share rack 0: full access bandwidth, no trunk crossing.
        t = net.start_transfer(0, 2, 1000.0, lambda t: None)
        assert t.rate == pytest.approx(100.0)


@pytest.mark.slow
class TestDegenerateClosByteIdentity:
    """racks=1, oversubscription=1 must be bit-identical to the flat star."""

    CONFIG = dict(
        node_count=12, interrupted_ratio=0.5, blocks_per_node=2.0, seed=7
    )

    def test_results_bitwise_equal(self):
        flat = run_emulation_point(
            EmulationConfig(**self.CONFIG), Strategy("adapt", 1)
        )
        clos = run_emulation_point(
            EmulationConfig(**self.CONFIG, topology="clos", racks=1),
            Strategy("adapt", 1),
        )
        assert clos.elapsed == flat.elapsed
        assert clos.data_locality == flat.data_locality
        assert clos.breakdown == flat.breakdown
        assert clos.interruptions == flat.interruptions

    def test_traces_byte_equal(self, tmp_path):
        flat_path = tmp_path / "flat.jsonl"
        clos_path = tmp_path / "clos.jsonl"
        run_emulation_point(
            EmulationConfig(**self.CONFIG),
            Strategy("adapt", 1),
            trace_out=str(flat_path),
        )
        run_emulation_point(
            EmulationConfig(**self.CONFIG, topology="clos", racks=1),
            Strategy("adapt", 1),
            trace_out=str(clos_path),
        )
        assert flat_path.read_bytes() == clos_path.read_bytes()

    def test_rack_constraint_without_extra_racks_changes_nothing(self):
        # rack_aware_placement on a single-rack Clos is unsatisfiable by
        # construction and must leave the placement stream untouched.
        flat = run_emulation_point(
            EmulationConfig(**self.CONFIG), Strategy("adapt", 1)
        )
        constrained = run_emulation_point(
            EmulationConfig(
                **self.CONFIG, topology="clos", racks=1, rack_aware_placement=True
            ),
            Strategy("adapt", 1),
        )
        assert constrained.elapsed == flat.elapsed
        assert constrained.breakdown == flat.breakdown
