"""Declarative chaos scenarios: validation, serialisation, targeting."""

import json

import pytest

from repro.simulator.scenarios import (
    ChaosCampaign,
    DegradedLink,
    DelayedRecovery,
    FailureStorm,
    FlappingNode,
    GrayNode,
    NetworkPartition,
    scenario_from_jsonable,
)
from repro.simulator.topology import ClosTopology, FlatStar
from repro.util.rng import RandomSource

NODES = [f"n{i}" for i in range(8)]


def storm(**kw):
    defaults = dict(start=10.0, duration=30.0)
    defaults.update(kw)
    return FailureStorm(**defaults)


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            storm(start=-1.0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            storm(duration=0.0)

    def test_negative_stagger_rejected(self):
        with pytest.raises(ValueError):
            storm(stagger=-0.5)

    def test_flap_needs_at_least_one_cycle(self):
        with pytest.raises(ValueError):
            FlappingNode(start=0.0, cycles=0, down_time=5.0, up_time=5.0)

    def test_gray_link_factor_is_a_throttle(self):
        with pytest.raises(ValueError):
            GrayNode(start=0.0, duration=10.0, link_factor=1.5)
        with pytest.raises(ValueError):
            GrayNode(start=0.0, duration=10.0, link_factor=0.0)

    def test_gray_exec_factor_is_a_slowdown(self):
        with pytest.raises(ValueError):
            GrayNode(start=0.0, duration=10.0, exec_factor=0.5)

    def test_delayed_recovery_stretch_lower_bound(self):
        with pytest.raises(ValueError):
            DelayedRecovery(start=0.0, duration=10.0, stretch=0.9)

    def test_campaign_requires_scenarios_and_name(self):
        with pytest.raises(ValueError):
            ChaosCampaign(name="x", scenarios=())
        with pytest.raises(ValueError):
            ChaosCampaign(name="", scenarios=(storm(),))
        with pytest.raises(TypeError):
            ChaosCampaign(name="x", scenarios=("not a scenario",))

    def test_campaign_slo_factor_positive(self):
        with pytest.raises(ValueError):
            ChaosCampaign(name="x", scenarios=(storm(),), slo_factor=0.0)


class TestWindows:
    def test_storm_end_includes_stagger(self):
        assert storm(stagger=4.0).end() == 44.0

    def test_flap_end_covers_all_cycles(self):
        flap = FlappingNode(start=10.0, cycles=3, down_time=4.0, up_time=6.0)
        assert flap.end() == 40.0

    def test_campaign_horizon_is_latest_end(self):
        campaign = ChaosCampaign(
            name="h",
            scenarios=(storm(), NetworkPartition(start=100.0, duration=20.0)),
        )
        assert campaign.horizon() == 120.0


class TestTargetResolution:
    def test_explicit_nodes_used_verbatim(self):
        s = storm(nodes=("n3", "n1"))
        assert s.resolve_targets(NODES, RandomSource(1)) == ("n3", "n1")

    def test_unknown_explicit_node_rejected(self):
        s = storm(nodes=("n99",))
        with pytest.raises(ValueError, match="unknown nodes"):
            s.resolve_targets(NODES, RandomSource(1))

    def test_default_targets_every_node_sorted(self):
        shuffled = ["n5", "n0", "n3", "n1"]
        s = storm()
        assert s.resolve_targets(shuffled, RandomSource(1)) == ("n0", "n1", "n3", "n5")

    def test_count_at_least_cluster_size_targets_all(self):
        s = storm(count=50)
        assert s.resolve_targets(NODES, RandomSource(1)) == tuple(sorted(NODES))

    def test_sampled_targets_are_seed_deterministic(self):
        s = storm(count=3)
        first = s.resolve_targets(NODES, RandomSource(9).substream("chaos", 0))
        second = s.resolve_targets(NODES, RandomSource(9).substream("chaos", 0))
        assert first == second
        assert len(first) == 3
        assert set(first) <= set(NODES)

    def test_different_seed_can_pick_differently(self):
        s = storm(count=3)
        picks = {
            s.resolve_targets(NODES, RandomSource(seed).substream("chaos", 0))
            for seed in range(12)
        }
        assert len(picks) > 1


class TestSerialisation:
    def campaign(self):
        return ChaosCampaign(
            name="roundtrip",
            slo_factor=1.5,
            scenarios=(
                storm(stagger=1.0, count=3),
                FlappingNode(start=50.0, cycles=2, down_time=3.0, up_time=4.0, nodes=("n1",)),
                NetworkPartition(start=80.0, duration=20.0, isolate_heartbeats=True, count=2),
                GrayNode(start=90.0, duration=30.0, link_factor=0.5, exec_factor=2.0),
                DelayedRecovery(start=0.0, duration=200.0, stretch=3.0, count=4),
                DegradedLink(
                    start=110.0,
                    duration=25.0,
                    links=("tor-up:1", "up:n3"),
                    capacity_factor=0.5,
                    corruption_rate=0.1,
                ),
            ),
        )

    def test_jsonable_roundtrip_is_identity(self):
        campaign = self.campaign()
        assert ChaosCampaign.from_jsonable(campaign.to_jsonable()) == campaign

    def test_file_roundtrip(self, tmp_path):
        campaign = self.campaign()
        path = str(tmp_path / "campaign.json")
        campaign.dump(path)
        assert ChaosCampaign.load(path) == campaign

    def test_jsonable_survives_json_encoding(self):
        campaign = self.campaign()
        wire = json.loads(json.dumps(campaign.to_jsonable()))
        assert ChaosCampaign.from_jsonable(wire) == campaign

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            scenario_from_jsonable({"kind": "meteor", "start": 0.0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            scenario_from_jsonable(
                {"kind": "storm", "start": 0.0, "duration": 5.0, "blast_radius": 3}
            )

    def test_spec_json_is_canonical(self):
        s = storm(nodes=("n1", "n0"))
        spec = s.spec_json()
        assert spec == s.spec_json()
        assert json.loads(spec)["kind"] == "storm"
        assert json.loads(spec)["nodes"] == ["n1", "n0"]

    def test_scenarios_list_must_be_a_list(self):
        with pytest.raises(ValueError, match="must be a list"):
            ChaosCampaign.from_jsonable({"name": "x", "scenarios": "storm"})


class TestDegradedLink:
    def window(self, **kw):
        defaults = dict(start=10.0, duration=20.0, capacity_factor=0.5)
        defaults.update(kw)
        return DegradedLink(**defaults)

    def clos(self):
        return ClosTopology(hosts=8, racks=4, pods=2, host_uplink_bps=100.0)

    def test_must_degrade_something(self):
        with pytest.raises(ValueError, match="degrade something"):
            DegradedLink(start=0.0, duration=5.0)

    def test_capacity_factor_bounds(self):
        with pytest.raises(ValueError, match="capacity_factor"):
            self.window(capacity_factor=1.5)
        with pytest.raises(ValueError):
            self.window(capacity_factor=0.0)

    def test_corruption_rate_bounds(self):
        with pytest.raises(ValueError, match="corruption_rate"):
            self.window(capacity_factor=1.0, corruption_rate=1.0)

    def test_corruption_alone_is_a_degradation(self):
        s = DegradedLink(start=0.0, duration=5.0, corruption_rate=0.2)
        assert s.capacity_factor == 1.0

    def test_end_is_start_plus_duration(self):
        assert self.window().end() == 30.0

    def test_explicit_links_parsed_verbatim(self):
        s = self.window(links=("tor-up:3", "up:7"))
        links = s.resolve_links(self.clos(), RandomSource(1))
        assert links == (("tor-up", 3), ("up", 7))

    def test_explicit_host_names_interned(self):
        s = self.window(links=("up:node-05",))
        links = s.resolve_links(self.clos(), RandomSource(1), intern=lambda n: 5)
        assert links == (("up", 5),)

    def test_count_zero_degrades_every_fabric_link(self):
        s = self.window(count=0)
        assert s.resolve_links(self.clos(), RandomSource(1)) == self.clos().fabric_links()

    def test_sampled_links_are_seed_deterministic(self):
        s = self.window(count=3)
        first = s.resolve_links(self.clos(), RandomSource(9).substream("chaos", 0))
        second = s.resolve_links(self.clos(), RandomSource(9).substream("chaos", 0))
        assert first == second
        assert len(first) == 3
        assert set(first) <= set(self.clos().fabric_links())

    def test_flat_star_needs_explicit_links(self):
        s = self.window(count=2)
        with pytest.raises(ValueError, match="explicit"):
            s.resolve_links(FlatStar(), RandomSource(1))

    def test_jsonable_roundtrip(self):
        s = self.window(links=("tor-up:1",), corruption_rate=0.25)
        assert scenario_from_jsonable(s.to_jsonable()) == s
