"""Degraded-link windows and the mitigation service that answers them.

Unit-level: the three strategies' effective-factor math and the
apply/release bookkeeping against a bare Network. Integration-level: a
scripted DegradedLink campaign armed through a real cluster's chaos
engine, run end-to-end under strict invariant auditing.
"""

import pytest

from repro.availability.generator import HostAvailability
from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.simulator.engine import Simulator
from repro.simulator.events import LinkDegraded, LinkRestored
from repro.simulator.mitigation import MITIGATIONS, LinkMitigationService
from repro.simulator.network import Network
from repro.simulator.scenarios import ChaosCampaign, DegradedLink
from repro.simulator.topology import ClosTopology


def clos_net(hosts=4, racks=2, oversub=1.0, width=4):
    sim = Simulator()
    topo = ClosTopology(
        hosts=hosts,
        racks=racks,
        host_uplink_bps=100.0,
        oversubscription=oversub,
        trunk_width=width,
    )
    net = Network(sim, uplink_bps=100.0, fair_sharing=True, topology=topo)
    return sim, net


class TestEffectiveFactor:
    def test_do_nothing_pays_corruption_twice(self):
        _, net = clos_net()
        svc = LinkMitigationService(net, strategy="do-nothing")
        factor = svc.effective_factor(("tor-up", 0), 0.8, 0.1)
        assert factor == pytest.approx(0.8 * 0.9 * 0.9)

    def test_retransmit_tax_pays_corruption_once(self):
        _, net = clos_net()
        svc = LinkMitigationService(net, strategy="retransmit-tax")
        factor = svc.effective_factor(("tor-up", 0), 0.8, 0.1)
        assert factor == pytest.approx(0.8 * 0.9)

    def test_disable_reroute_keeps_surviving_members(self):
        _, net = clos_net(width=4)
        svc = LinkMitigationService(net, strategy="disable-reroute")
        # Corruption vanishes entirely; (4-1)/4 of the trunk survives.
        assert svc.effective_factor(("tor-up", 0), 0.5, 0.3) == pytest.approx(0.75)

    def test_disable_reroute_falls_back_on_single_cables(self):
        _, net = clos_net(width=4)
        svc = LinkMitigationService(net, strategy="disable-reroute")
        # A host access link has width 1: nothing to reroute onto.
        factor = svc.effective_factor(("up", 0), 0.5, 0.3)
        assert factor == pytest.approx(0.5 * 0.7 * 0.7)

    def test_unknown_strategy_rejected(self):
        _, net = clos_net()
        with pytest.raises(ValueError, match="strategy"):
            LinkMitigationService(net, strategy="prayer")

    def test_registry_lists_all_strategies(self):
        assert MITIGATIONS == ("do-nothing", "disable-reroute", "retransmit-tax")


class TestApplyRelease:
    def degrade(self, spec, cf=0.5, p=0.0, t=0.0):
        return LinkDegraded(time=t, link=spec, capacity_factor=cf, corruption_rate=p)

    def restore(self, spec, cf=0.5, p=0.0, t=0.0):
        return LinkRestored(time=t, link=spec, capacity_factor=cf, corruption_rate=p)

    def test_degrade_scales_and_restore_releases(self):
        _, net = clos_net()
        svc = LinkMitigationService(net, strategy="do-nothing")
        nominal = net.link_capacity(("tor-up", 0))
        svc.handle_link_degraded(self.degrade("tor-up:0", cf=0.5))
        assert net.link_capacity(("tor-up", 0)) == pytest.approx(nominal * 0.5)
        svc.handle_link_restored(self.restore("tor-up:0", cf=0.5))
        assert net.link_capacity(("tor-up", 0)) == nominal

    def test_overlapping_windows_compose(self):
        _, net = clos_net()
        svc = LinkMitigationService(net, strategy="do-nothing")
        nominal = net.link_capacity(("tor-up", 0))
        svc.handle_link_degraded(self.degrade("tor-up:0", cf=0.5))
        svc.handle_link_degraded(self.degrade("tor-up:0", cf=0.25))
        assert net.link_capacity(("tor-up", 0)) == pytest.approx(nominal * 0.125)
        svc.handle_link_restored(self.restore("tor-up:0", cf=0.5))
        assert net.link_capacity(("tor-up", 0)) == pytest.approx(nominal * 0.25)
        svc.handle_link_restored(self.restore("tor-up:0", cf=0.25))
        assert net.link_capacity(("tor-up", 0)) == nominal

    def test_restore_without_degrade_is_noop(self):
        _, net = clos_net()
        svc = LinkMitigationService(net, strategy="do-nothing")
        nominal = net.link_capacity(("tor-up", 0))
        svc.handle_link_restored(self.restore("tor-up:0"))
        assert net.link_capacity(("tor-up", 0)) == nominal

    def test_stop_releases_everything(self):
        _, net = clos_net()
        svc = LinkMitigationService(net, strategy="do-nothing")
        nominal_tor = net.link_capacity(("tor-up", 0))
        nominal_down = net.link_capacity(("tor-down", 1))
        svc.handle_link_degraded(self.degrade("tor-up:0", cf=0.5))
        svc.handle_link_degraded(self.degrade("tor-down:1", cf=0.5))
        svc.stop()
        assert net.link_capacity(("tor-up", 0)) == nominal_tor
        assert net.link_capacity(("tor-down", 1)) == nominal_down
        assert svc.describe()["degraded_links_active"] == 0

    def test_degraded_link_slows_live_transfers(self):
        sim, net = clos_net(oversub=1.0)
        svc = LinkMitigationService(net, strategy="do-nothing")
        t = net.start_transfer(0, 1, 1000.0, lambda t: None)  # cross-rack
        assert t.rate == pytest.approx(100.0)
        # The tor-up trunk carries 200 nominal (2 hosts x 100); at 0.25 it
        # binds below the access links and the flow drops to 50.
        svc.handle_link_degraded(self.degrade("tor-up:0", cf=0.25))
        assert t.rate == pytest.approx(50.0)
        svc.handle_link_restored(self.restore("tor-up:0", cf=0.25))
        assert t.rate == pytest.approx(100.0)


def degraded_campaign(**kw):
    defaults = dict(start=20.0, duration=60.0, count=0, capacity_factor=0.3)
    defaults.update(kw)
    return ChaosCampaign(
        name="limping-fabric", scenarios=(DegradedLink(**defaults),)
    )


@pytest.mark.slow
class TestDegradedCampaign:
    """End-to-end: armed windows, strict audits, strategy comparison."""

    CONFIG = dict(
        node_count=8,
        interrupted_ratio=0.5,
        blocks_per_node=2.0,
        seed=7,
        topology="clos",
        racks=4,
        oversubscription=4.0,
    )

    @pytest.mark.parametrize("strategy", MITIGATIONS)
    def test_strict_audit_clean_under_every_strategy(self, strategy):
        result = run_emulation_point(
            EmulationConfig(**self.CONFIG, link_mitigation=strategy),
            Strategy("adapt", 1),
            audit="strict",
            chaos=degraded_campaign(corruption_rate=0.2),
        )
        assert result.resilience is not None
        assert result.resilience.activations[0].targets  # links resolved

    def test_degradation_slows_the_job(self):
        healthy = run_emulation_point(
            EmulationConfig(**self.CONFIG, link_mitigation="do-nothing"),
            Strategy("adapt", 1),
        )
        degraded = run_emulation_point(
            EmulationConfig(**self.CONFIG, link_mitigation="do-nothing"),
            Strategy("adapt", 1),
            chaos=degraded_campaign(capacity_factor=0.05, duration=120.0),
        )
        assert degraded.elapsed > healthy.elapsed

    def test_unmitigated_campaign_leaves_links_nominal(self):
        # Without a mitigation service nobody answers the events: the run
        # must still complete with clean audits and unchanged makespan.
        baseline = run_emulation_point(
            EmulationConfig(**self.CONFIG), Strategy("adapt", 1)
        )
        unanswered = run_emulation_point(
            EmulationConfig(**self.CONFIG),
            Strategy("adapt", 1),
            audit="strict",
            chaos=degraded_campaign(capacity_factor=0.05),
        )
        assert unanswered.elapsed == baseline.elapsed


class TestClusterArming:
    def hosts(self, n=4):
        # Dedicated hosts: no interruptions, so link windows act alone.
        return [HostAvailability(host_id=f"node-{i:05d}") for i in range(n)]

    def test_windows_apply_and_lift_on_schedule(self):
        config = ClusterConfig(
            seed=3,
            detection="oracle",
            topology="clos",
            racks=2,
            link_mitigation="do-nothing",
            chaos=ChaosCampaign(
                name="one-window",
                scenarios=(
                    DegradedLink(
                        start=10.0,
                        duration=5.0,
                        links=("tor-up:0",),
                        capacity_factor=0.5,
                    ),
                ),
            ),
        )
        cluster = build_cluster(self.hosts(), config)
        nominal = cluster.network.link_capacity(("tor-up", 0))
        cluster.sim.run(until=12.0)
        assert cluster.network.link_capacity(("tor-up", 0)) == pytest.approx(
            nominal * 0.5
        )
        assert cluster.mitigation.describe()["degraded_links_active"] == 1
        cluster.sim.run(until=16.0)
        assert cluster.network.link_capacity(("tor-up", 0)) == nominal
        assert cluster.mitigation.describe()["degraded_links_active"] == 0
        cluster.stop()

    def test_host_link_targets_resolve_through_the_id_table(self):
        config = ClusterConfig(
            seed=3,
            detection="oracle",
            topology="clos",
            racks=2,
            link_mitigation="do-nothing",
            chaos=ChaosCampaign(
                name="host-edge",
                scenarios=(
                    DegradedLink(
                        start=5.0,
                        duration=5.0,
                        links=("up:node-00001",),
                        capacity_factor=0.5,
                    ),
                ),
            ),
        )
        cluster = build_cluster(self.hosts(), config)
        nid = cluster.ids.id_of("node-00001")
        nominal = cluster.network.uplink(nid)
        cluster.sim.run(until=7.0)
        assert cluster.network.link_capacity(("up", nid)) == pytest.approx(
            nominal * 0.5
        )
        cluster.sim.run(until=11.0)
        assert cluster.network.link_capacity(("up", nid)) == nominal
        cluster.stop()
