"""Event-queue interchangeability: heap and calendar must order identically.

The :class:`~repro.simulator.engine.EventQueue` contract is *exact*
``(time, seq)`` order — the calendar queue's bucketing, resizing, and
lap-scan fallback are speed-only concerns. These tests pin that three
ways: unit behaviour of the calendar queue, randomized pop-order
equivalence against the heap, and byte-identical end-to-end trajectories
(golden scenarios plus the chaos smoke campaign) under both queues.
"""

import pytest

from repro.experiments.chaosrun import run_chaos_point
from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.simulator.engine import (
    CalendarEventQueue,
    EventHandle,
    HeapEventQueue,
    Simulator,
)
from repro.simulator.scenarios import ChaosCampaign
from repro.util.rng import RandomSource


def entry(time, seq, label="e"):
    return (time, seq, EventHandle(time, lambda: None, label))


class TestCalendarEventQueueUnit:
    def test_empty_pop_raises(self):
        q = CalendarEventQueue()
        with pytest.raises(IndexError):
            q.pop()
        assert q.peek() is None
        assert len(q) == 0

    def test_fifo_within_same_time(self):
        q = CalendarEventQueue()
        for seq in (3, 1, 2, 0):
            q.push(entry(5.0, seq))
        assert [q.pop()[1] for _ in range(4)] == [0, 1, 2, 3]

    def test_orders_across_buckets_and_laps(self):
        # Times chosen to collide in a 16-bucket table (stride = nbuckets
        # * width) so correctness must come from the lap logic, not luck.
        q = CalendarEventQueue(nbuckets=16, width=1.0)
        times = [0.5, 16.5, 32.5, 1.5, 17.5, 8.0, 200.0, 0.25]
        for seq, t in enumerate(times):
            q.push(entry(t, seq))
        popped = [q.pop()[:2] for _ in range(len(times))]
        assert popped == sorted((t, s) for s, t in enumerate(times))

    def test_push_behind_scan_position_is_not_skipped(self):
        q = CalendarEventQueue(nbuckets=16, width=1.0)
        q.push(entry(100.0, 0))
        assert q.peek()[0] == 100.0  # scan advanced to t=100
        q.push(entry(2.0, 1))  # behind the scan: must back up
        assert q.pop()[0] == 2.0
        assert q.pop()[0] == 100.0

    def test_resize_preserves_order(self):
        q = CalendarEventQueue(nbuckets=16, width=1.0)
        n = 500  # > 2 * nbuckets: forces doubling several times
        rnd = RandomSource(9).substream("t").raw_random
        times = [rnd() * 1000.0 for _ in range(n)]
        for seq, t in enumerate(times):
            q.push(entry(t, seq))
        popped = [q.pop()[:2] for _ in range(n)]
        assert popped == sorted((t, s) for s, t in enumerate(times))
        assert len(q) == 0

    def test_compact_drops_cancelled_only(self):
        q = CalendarEventQueue()
        keep = entry(1.0, 0)
        drop = entry(2.0, 1)
        drop[2].cancel()
        q.push(keep)
        q.push(drop)
        assert q.compact() == 1
        assert len(q) == 1
        assert q.pop() is keep


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_interleaved_push_pop_matches_heap(self, seed):
        heap = HeapEventQueue()
        cal = CalendarEventQueue()
        rnd = RandomSource(seed).substream("ops").raw_random
        seq = 0
        for _ in range(3000):
            if len(heap) and rnd() < 0.45:
                assert cal.pop() == heap.pop()
            else:
                # Mixed time scales: sub-second bursts and far-future
                # timers, like a real simulation schedule.
                t = rnd() * (86400.0 if rnd() < 0.2 else 10.0)
                e = entry(t, seq)
                heap.push(e)
                cal.push(e)
                seq += 1
            assert len(cal) == len(heap)
        while len(heap):
            assert cal.pop() == heap.pop()

    def test_simulator_runs_identically_on_both(self):
        def drive(queue):
            sim = Simulator(queue=queue)
            fired = []
            rnd = RandomSource(4).substream("t").raw_random

            def tick(label):
                fired.append((sim.now, label))

            for i in range(200):
                t = rnd() * 500.0
                sim.schedule_at(t, lambda i=i, t=t: tick(f"{i}@{t}"), label="tick")
            sim.run(until=500.0)
            return fired

        assert drive("heap") == drive("calendar")


GOLDEN_CONFIGS = [
    # The three golden-determinism scenarios (same configs as
    # tests/runtime/test_golden_determinism.py).
    (
        EmulationConfig(node_count=16, interrupted_ratio=0.5, blocks_per_node=4.0, seed=7),
        Strategy("adapt", 1),
    ),
    (
        EmulationConfig(
            node_count=16,
            interrupted_ratio=0.5,
            blocks_per_node=4.0,
            seed=11,
            detection="oracle",
            replication_monitor=True,
            permanent_failure_rate=0.3,
            permanent_failure_horizon=300.0,
        ),
        Strategy("existing", 2),
    ),
    (
        EmulationConfig(
            node_count=12,
            interrupted_ratio=0.75,
            blocks_per_node=3.0,
            seed=3,
            access_during_downtime=False,
        ),
        Strategy("naive", 2),
    ),
]


@pytest.mark.slow
class TestEndToEndByteIdentity:
    @pytest.mark.parametrize("index", range(len(GOLDEN_CONFIGS)))
    def test_golden_scenarios_identical_on_both_queues(self, index, monkeypatch):
        config, strategy = GOLDEN_CONFIGS[index]
        results = {}
        for queue in ("heap", "calendar"):
            monkeypatch.setenv("REPRO_EVENT_QUEUE", queue)
            results[queue] = run_emulation_point(config, strategy)
        heap, cal = results["heap"], results["calendar"]
        # Full structured comparison: every float byte-identical.
        assert heap.elapsed == cal.elapsed
        assert heap.data_locality == cal.data_locality
        assert heap.breakdown == cal.breakdown
        assert (heap.durability is None) == (cal.durability is None)
        if heap.durability is not None:
            assert heap.durability.summary_row() == cal.durability.summary_row()

    def test_chaos_campaign_identical_on_both_queues(self, monkeypatch):
        campaign_path = __file__.rsplit("/tests/", 1)[0] + "/examples/chaos_smoke.json"
        campaign = ChaosCampaign.load(campaign_path)
        config = EmulationConfig(
            node_count=8,
            interrupted_ratio=0.5,
            blocks_per_node=2.0,
            seed=11,
            replication_monitor=True,
        )
        reports = {}
        for queue in ("heap", "calendar"):
            monkeypatch.setenv("REPRO_EVENT_QUEUE", queue)
            outcome = run_chaos_point(config, Strategy("adapt", 2), campaign, audit="strict")
            reports[queue] = outcome.report
        assert reports["heap"] == reports["calendar"]
