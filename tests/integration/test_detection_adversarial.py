"""Adversarial detection scenarios driven by chaos primitives.

Three interleavings where what the detector believes and what is
physically true pull apart: a heartbeat-blocking partition racing a real
death, pure belief divergence on a healthy cluster, and speculative
execution rescuing tasks from a gray (degraded-but-alive) node.
"""

from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.core.placement import RandomPlacement
from repro.mapreduce.job import JobConf, MapJob
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.simulator.scenarios import ChaosCampaign, GrayNode, NetworkPartition

GAMMA = 10.0
HORIZON = 1_000_000.0


def build(campaign, windows=None, n=3, **kw):
    hosts = [HostAvailability(host_id=f"n{i}") for i in range(n)]
    traces = None
    if windows is not None:
        traces = [
            AvailabilityTrace(f"n{i}", HORIZON, windows.get(i, ())) for i in range(n)
        ]
    config = ClusterConfig(detection="heartbeat", seed=1, chaos=campaign, **kw)
    return build_cluster(hosts, config, traces=traces, default_gamma=GAMMA)


class TestHeartbeatLossVersusTrueDeath:
    def test_partition_then_real_death_resolves_on_physical_return(self):
        # Beats are blocked from t=10; the node is declared dead at t=18
        # while still physically up. It then *really* dies at t=30 (until
        # t=100). When the partition heals at t=70 the node stays silent —
        # it is genuinely down now — so belief only flips back at t=100,
        # with exactly one death and one return observed.
        campaign = ChaosCampaign(
            name="race",
            scenarios=(
                NetworkPartition(
                    start=10.0, duration=60.0, isolate_heartbeats=True, nodes=("n0",)
                ),
            ),
        )
        cluster = build(campaign, windows={0: [(30.0, 100.0)]})
        n0 = cluster.ids.id_of("n0")
        transitions = []
        cluster.heartbeats.subscribe(
            on_dead=lambda n, t: transitions.append(("dead", n, t)),
            on_returned=lambda n, t: transitions.append(("back", n, t)),
        )
        cluster.sim.run(until=25.0)
        # Believed dead, physically alive: pure detector illusion.
        assert not cluster.namenode.is_live(n0)
        assert not cluster.injector.is_down(n0)
        cluster.sim.run(until=90.0)
        # Partition healed at 70, but the node really is down now.
        assert not cluster.namenode.is_live(n0)
        assert cluster.injector.is_down(n0)
        cluster.sim.run(until=120.0)
        assert cluster.namenode.is_live(n0)
        assert transitions == [("dead", n0, 18.0), ("back", n0, 100.0)]
        cluster.stop()


class TestBeliefDivergence:
    def test_oracle_truth_and_heartbeat_belief_diverge_during_partition(self):
        # Nothing ever physically fails; only beats are lost. The belief
        # map must diverge from the injector's ground truth for the
        # partition's span and reconverge after the first post-heal beat.
        campaign = ChaosCampaign(
            name="divergence",
            scenarios=(
                NetworkPartition(
                    start=20.0, duration=30.0, isolate_heartbeats=True, nodes=("n0", "n1")
                ),
            ),
        )
        cluster = build(campaign, n=4)
        cluster.sim.run(until=45.0)
        for node in (cluster.ids.id_of("n0"), cluster.ids.id_of("n1")):
            assert not cluster.namenode.is_live(node)
            assert not cluster.injector.is_down(node)
        assert cluster.namenode.is_live(cluster.ids.id_of("n2"))
        cluster.sim.run(until=60.0)
        for node in (cluster.ids.id_of("n0"), cluster.ids.id_of("n1")):
            assert cluster.namenode.is_live(node)
            assert not cluster.injector.is_down(node)
        cluster.stop()

    def test_transfer_only_partition_leaves_belief_intact(self):
        # Heartbeats keep flowing (isolate_heartbeats=False): storage
        # traffic stalls but the NameNode never changes its mind.
        campaign = ChaosCampaign(
            name="gray-failure",
            scenarios=(NetworkPartition(start=20.0, duration=30.0, nodes=("n0",)),),
        )
        cluster = build(campaign, n=3)
        cluster.sim.run(until=45.0)
        assert cluster.namenode.is_live(cluster.ids.id_of("n0"))
        assert cluster.network.describe()["partitions"] == 1
        cluster.sim.run(until=60.0)
        assert cluster.network.describe()["partitions"] == 0
        cluster.stop()


class TestSpeculationOnGrayNode:
    def test_speculative_attempt_rescues_tasks_from_gray_node(self):
        # n0 executes at 4x gamma — past the speculation threshold of
        # slowdown(2.0) * (gamma + fetch) — while still heartbeating
        # happily. The stragglers must be speculated away, not waited out.
        # Small blocks keep the fetch term out of the threshold: 1 MB at
        # 8 Mb/s is ~1s, so the threshold is ~2*(10+1)=22s against a 40s
        # gray execution.
        campaign = ChaosCampaign(
            name="gray",
            scenarios=(
                GrayNode(start=0.0, duration=100_000.0, exec_factor=4.0, nodes=("n0",)),
            ),
        )
        cluster = build(campaign, n=3, block_size_bytes=1024 * 1024)
        # Settle the t=0 NodeDegraded before ingest (run_map_phase does the
        # same) so the slowdown is in force when the first attempts start.
        cluster.sim.run(until=0.0)
        f = cluster.client.copy_from_local(
            "in", num_blocks=3, replication=3, policy=RandomPlacement(), gamma=GAMMA
        )
        job = MapJob.uniform(JobConf(speculative=True), f, GAMMA)
        cluster.jobtracker.submit(job)
        cluster.run_until_job_done()
        assert job.is_complete
        speculated = [
            a for task in job.tasks for a in task.attempts if a.speculative
        ]
        assert speculated, "gray-node stragglers never triggered speculation"
        # Every task originally running on the gray node finished elsewhere.
        n0 = cluster.ids.id_of("n0")
        gray_tasks = [
            task
            for task in job.tasks
            if any(a.node_id == n0 for a in task.attempts)
        ]
        assert gray_tasks
        for task in gray_tasks:
            assert task.completed_by.node_id != n0
        assert job.makespan < 4.0 * GAMMA * len(job.tasks)
        cluster.stop()
