"""Durability scenarios: permanent data loss and the healing pipeline.

The acceptance bar for the durability stack: with the replication monitor
on and replication >= 2, a permanent single-node loss must end with zero
unreadable blocks and every job completing; with the monitor off the same
scenario must *report* the damage in the durability metrics. Correlated
permanent losses that destroy every replica of a block must still leave
the job terminating (tasks over lost blocks are abandoned, keeping the
makespan measurable) with the loss accounted.
"""

from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.core.placement import RandomPlacement
from repro.mapreduce.job import JobConf, MapJob, TaskState
from repro.runtime.cluster import ClusterConfig, build_cluster

GAMMA = 10.0
HORIZON = 1_000_000.0


def build(windows, n=4, detection="oracle", bandwidth=8.0, seed=1, **kw):
    hosts = [HostAvailability(host_id=f"n{i}") for i in range(n)]
    traces = [
        AvailabilityTrace(f"n{i}", HORIZON, windows.get(i, ())) for i in range(n)
    ]
    config = ClusterConfig(
        bandwidth_mbps=bandwidth, detection=detection, seed=seed, **kw
    )
    return build_cluster(hosts, config, traces=traces, default_gamma=GAMMA)


def submit(cluster, blocks, replication=2):
    f = cluster.client.copy_from_local(
        "in", num_blocks=blocks, replication=replication,
        policy=RandomPlacement(), gamma=GAMMA,
    )
    job = MapJob.uniform(JobConf(), f, GAMMA)
    cluster.jobtracker.submit(job)
    return job


def readable_replicas(cluster, block_id):
    """Holders whose *physical* storage can still serve the block."""
    return [
        h
        for h in cluster.namenode.replica_holders(block_id)
        if cluster.namenode.datanode(h).has_block(block_id)
    ]


class TestSinglePermanentLoss:
    def test_monitor_heals_to_zero_unreadable(self):
        cluster = build({}, n=4, replication_monitor=True)
        job = submit(cluster, blocks=8, replication=2)
        n0 = cluster.ids.id_of("n0")
        held = cluster.client.block_distribution("in")[n0]
        assert held > 0, "seed must place data on the doomed node"
        cluster.injector.schedule_permanent_failure(n0, at_time=12.0)
        cluster.run_until_job_done()
        assert job.is_complete
        cluster.sim.run(until=50_000.0)  # let healing drain
        d = cluster.durability
        assert d.permanent_failures == 1
        assert d.replicas_lost == held
        assert d.blocks_lost == 0
        assert d.rereplications_completed == held
        assert d.rereplication_bytes > 0
        # Every block is back at full strength on surviving disks.
        assert cluster.namenode.under_replicated() == {}
        for task in job.tasks:
            block_id = task.block.block_id
            replicas = readable_replicas(cluster, block_id)
            assert len(replicas) == 2
            assert n0 not in replicas
        assert cluster.monitor.is_idle()

    def test_without_monitor_damage_is_reported_not_healed(self):
        cluster = build({}, n=4)  # replication_monitor defaults off
        job = submit(cluster, blocks=8, replication=2)
        n0 = cluster.ids.id_of("n0")
        held = cluster.client.block_distribution("in")[n0]
        assert held > 0
        cluster.injector.schedule_permanent_failure(n0, at_time=12.0)
        cluster.run_until_job_done()
        # Surviving replicas keep every block readable: the job completes.
        assert job.is_complete
        cluster.sim.run(until=50_000.0)
        d = cluster.durability
        assert d.permanent_failures == 1
        assert d.replicas_lost == held
        assert d.blocks_lost == 0
        assert d.rereplication_bytes == 0.0
        # Nothing heals: the shortfall persists in the NameNode's view.
        shortfall = cluster.namenode.under_replicated()
        assert len(shortfall) == held
        assert all(live == 1 for live in shortfall.values())

    def test_heartbeat_detection_purges_and_untracks(self):
        cluster = build(
            {}, n=4, detection="heartbeat", replication_monitor=True,
            heartbeat_interval=3.0, heartbeat_miss_threshold=2,
        )
        job = submit(cluster, blocks=8, replication=2)
        n0 = cluster.ids.id_of("n0")
        cluster.injector.schedule_permanent_failure(n0, at_time=12.0)
        cluster.run_until_job_done()
        assert job.is_complete
        cluster.sim.run(until=50_000.0)
        assert not cluster.heartbeats.is_tracked(n0)
        assert cluster.durability.blocks_lost == 0
        assert cluster.namenode.under_replicated() == {}
        assert cluster.namenode.located_on(n0) == []


class TestUnrecoverableLoss:
    def doomed_blocks(self, cluster, job, victims):
        return [
            t.block.block_id
            for t in job.tasks
            if cluster.namenode.replica_holders(t.block.block_id) <= victims
        ]

    def test_correlated_loss_destroys_blocks_but_job_terminates(self):
        # n0 and n1 are both lost before any heal can finish (a block copy
        # takes ~64 s at 8 Mb/s; the failures are 4 s apart): every block
        # whose replicas all lived on the pair is gone for good. The job
        # must still terminate, abandoning the unrunnable tasks.
        cluster = build({}, n=3, replication_monitor=True)
        job = submit(cluster, blocks=9, replication=2)
        n0, n1 = cluster.ids.id_of("n0"), cluster.ids.id_of("n1")
        doomed = self.doomed_blocks(cluster, job, {n0, n1})
        assert doomed, "seed must co-locate some block entirely on n0+n1"
        cluster.injector.schedule_permanent_failure(n0, at_time=8.0)
        cluster.injector.schedule_permanent_failure(n1, at_time=12.0)
        cluster.run_until_job_done()
        assert job.finished_at is not None
        assert job.makespan > 0.0
        d = cluster.durability
        assert d.permanent_failures == 2
        assert d.blocks_lost == len(doomed)
        assert sorted(d.lost_block_ids) == sorted(doomed)
        assert job.completed_count + job.abandoned_count == job.num_tasks
        # Only tasks over destroyed blocks were abandoned.
        for task in job.tasks:
            if task.state is TaskState.ABANDONED:
                assert task.block.block_id in doomed

    def test_replication_one_permanent_loss_abandons_and_terminates(self):
        # With replication 1 there is nothing to heal from: the dead node's
        # blocks are simply lost and their tasks abandoned (this is the
        # scenario that used to livelock run_until_job_done).
        cluster = build({}, n=3, replication_monitor=True)
        job = submit(cluster, blocks=9, replication=1)
        n0 = cluster.ids.id_of("n0")
        doomed = self.doomed_blocks(cluster, job, {n0})
        assert doomed
        cluster.injector.schedule_permanent_failure(n0, at_time=5.0)
        cluster.run_until_job_done()
        assert job.finished_at is not None
        d = cluster.durability
        assert d.blocks_lost == len(doomed)
        assert d.rereplication_bytes == 0.0
        assert job.completed_count + job.abandoned_count == job.num_tasks
        abandoned = [t for t in job.tasks if t.state is TaskState.ABANDONED]
        assert abandoned
        assert all(t.block.block_id in doomed for t in abandoned)

    def test_job_over_already_lost_blocks_finishes_immediately(self):
        # Losing data between jobs: a second job submitted over the damaged
        # file must abandon the dead tasks at submit time, not hang.
        cluster = build({}, n=3, replication_monitor=True)
        job = submit(cluster, blocks=6, replication=1)
        n0 = cluster.ids.id_of("n0")
        doomed = self.doomed_blocks(cluster, job, {n0})
        assert doomed
        cluster.injector.schedule_permanent_failure(n0, at_time=5.0)
        cluster.run_until_job_done()
        second = MapJob.uniform(JobConf(name="again"), cluster.namenode.file("in"), GAMMA)
        cluster.jobtracker.submit(second)
        cluster.run_until_job_done()
        assert second.finished_at is not None
        assert second.abandoned_count == len(doomed)
        assert second.completed_count == second.num_tasks - len(doomed)
