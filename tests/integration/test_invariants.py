"""Property-based invariants of the full simulation stack.

Hypothesis drives randomized small clusters (size, interruption mix,
bandwidth, replication, policy) through complete map phases and checks the
invariants that must survive *any* schedule:

* the job always terminates, every task exactly once;
* no two replicas of a block ever co-locate;
* the slot-time conservation law holds up to scheduling slack;
* locality is consistent with the attempt records;
* reruns with the same seed are bit-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.generator import build_group_hosts
from repro.core.placement import make_policy
from repro.mapreduce.job import AttemptState, JobConf, MapJob, TaskState
from repro.runtime.cluster import ClusterConfig, build_cluster

GAMMA = 10.0

cluster_params = st.fixed_dictionaries(
    {
        "nodes": st.integers(min_value=2, max_value=10),
        "ratio": st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
        "blocks_per_node": st.integers(min_value=1, max_value=4),
        "replication": st.integers(min_value=1, max_value=2),
        "policy": st.sampled_from(["existing", "adapt", "naive"]),
        "bandwidth": st.sampled_from([4.0, 8.0, 32.0]),
        "seed": st.integers(min_value=0, max_value=10_000),
        "detection": st.sampled_from(["oracle", "heartbeat"]),
        "access": st.booleans(),
        "speculation": st.booleans(),
    }
)


def run_scenario(p):
    hosts = build_group_hosts(p["nodes"], p["ratio"])
    config = ClusterConfig(
        bandwidth_mbps=p["bandwidth"],
        detection=p["detection"],
        access_during_downtime=p["access"],
        speculation_enabled=p["speculation"],
        seed=p["seed"],
    )
    cluster = build_cluster(hosts, config, default_gamma=GAMMA)
    cluster.sim.run(until=0.0)
    replication = min(p["replication"], p["nodes"])
    f = cluster.client.copy_from_local(
        "in",
        num_blocks=p["blocks_per_node"] * p["nodes"],
        replication=replication,
        policy=make_policy(p["policy"]),
        gamma=GAMMA,
    )
    job = MapJob.uniform(JobConf(speculative=p["speculation"]), f, GAMMA)
    cluster.jobtracker.submit(job)
    cluster.run_until_job_done(max_events=5_000_000)
    return cluster, job, f


class TestInvariants:
    @given(cluster_params)
    @settings(max_examples=30, deadline=None)
    def test_job_terminates_every_task_once(self, p):
        cluster, job, _f = run_scenario(p)
        assert job.is_complete
        for task in job.tasks:
            assert task.state is TaskState.COMPLETED
            succeeded = [a for a in task.attempts if a.state is AttemptState.SUCCEEDED]
            assert len(succeeded) == 1
            assert task.completed_by is succeeded[0]
            assert not task.has_live_attempt()

    @given(cluster_params)
    @settings(max_examples=20, deadline=None)
    def test_replicas_never_colocate(self, p):
        cluster, job, f = run_scenario(p)
        for block in f.blocks:
            holders = cluster.namenode.replica_holders(block.block_id)
            assert len(holders) == min(p["replication"], p["nodes"])

    @given(cluster_params)
    @settings(max_examples=20, deadline=None)
    def test_slot_time_conservation(self, p):
        cluster, job, _f = run_scenario(p)
        breakdown = cluster.metrics.breakdown(job.makespan, slots=cluster.total_slots)
        residual = abs(breakdown.conservation_residual())
        assert residual < 0.05 * breakdown.slot_time + 1.0

    @given(cluster_params)
    @settings(max_examples=20, deadline=None)
    def test_locality_consistent_with_attempts(self, p):
        cluster, job, _f = run_scenario(p)
        local = sum(1 for t in job.tasks if t.completed_by.local)
        assert cluster.metrics.local_tasks == local
        assert cluster.metrics.total_tasks == job.num_tasks
        # A local completion's node must actually hold the block.
        for task in job.tasks:
            if task.completed_by.local:
                assert task.completed_by.node_id in cluster.namenode.replica_holders(
                    task.block.block_id
                )

    @given(cluster_params)
    @settings(max_examples=10, deadline=None)
    def test_seed_determinism(self, p):
        _c1, job1, _f1 = run_scenario(p)
        _c2, job2, _f2 = run_scenario(p)
        assert job1.makespan == job2.makespan
        assert [t.completed_by.node_id for t in job1.tasks] == [
            t.completed_by.node_id for t in job2.tasks
        ]

    @given(cluster_params)
    @settings(max_examples=20, deadline=None)
    def test_metrics_non_negative_and_bounded(self, p):
        cluster, job, _f = run_scenario(p)
        m = cluster.metrics
        assert m.rework_time >= 0.0
        assert m.recovery_time >= 0.0
        assert m.migration_time >= 0.0
        assert 0.0 <= m.data_locality <= 1.0
        # Useful time equals base work (uniform gammas, one win per task).
        assert m.useful_time == pytest.approx(job.total_base_work)
