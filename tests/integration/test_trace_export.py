"""End-to-end trace export: `emulate --trace-out` and the runner API.

The acceptance bar from the refactor issue: a traced run must produce
parseable JSON Lines whose NodeDown / NodeUp record counts equal the
MapPhaseResult's interruption accounting — the trace is the bus stream,
and the bus stream *is* what the metrics counted.
"""

import json

from repro.cli import main
from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point


def _load_jsonl(path):
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            records.append(json.loads(line))
    return records


class TestRunnerTraceOut:
    def test_trace_counts_match_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = EmulationConfig(
            node_count=12, interrupted_ratio=0.5, blocks_per_node=3.0, seed=13
        )
        result = run_emulation_point(config, Strategy("adapt", 1), trace_out=str(path))
        records = _load_jsonl(path)
        assert records, "traced run produced no events"
        counts = {}
        for record in records:
            counts[record["type"]] = counts.get(record["type"], 0) + 1
        assert counts.get("NodeDown", 0) == result.interruptions
        assert counts.get("NodeUp", 0) == result.node_returns
        assert result.interruptions > 0  # the scenario actually interrupted

    def test_records_are_well_formed_and_causally_ordered(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = EmulationConfig(
            node_count=8, interrupted_ratio=0.5, blocks_per_node=2.0, seed=21
        )
        run_emulation_point(config, Strategy("existing", 1), trace_out=str(path))
        records = _load_jsonl(path)
        for expected_seq, record in enumerate(records):
            assert record["seq"] == expected_seq
            assert set(record) == {"seq", "time", "type", "key", "phases", "payload"}
            assert record["payload"]["time"] == record["time"]
        times = [record["time"] for record in records]
        assert times == sorted(times)  # publish order never rewinds the clock

    def test_trace_includes_task_lifecycle(self, tmp_path):
        # With a tap attached, TaskStateChange is wanted and every task's
        # transitions appear in the stream.
        path = tmp_path / "trace.jsonl"
        config = EmulationConfig(
            node_count=8, interrupted_ratio=0.25, blocks_per_node=2.0, seed=2
        )
        result = run_emulation_point(config, Strategy("adapt", 1), trace_out=str(path))
        records = _load_jsonl(path)
        completed = [
            r
            for r in records
            if r["type"] == "TaskStateChange" and r["payload"]["state"] == "COMPLETED"
        ]
        assert len(completed) == result.num_tasks

    def test_untraced_run_writes_nothing(self, tmp_path):
        config = EmulationConfig(
            node_count=8, interrupted_ratio=0.25, blocks_per_node=2.0, seed=2
        )
        result = run_emulation_point(config, Strategy("adapt", 1))
        assert result.elapsed > 0
        assert list(tmp_path.iterdir()) == []


class TestCliTraceOut:
    def test_emulate_trace_out_flag(self, tmp_path, capsys):
        path = tmp_path / "cli-trace.jsonl"
        code = main(
            [
                "emulate",
                "--policy",
                "adapt",
                "--replicas",
                "1",
                "--nodes",
                "8",
                "--ratio",
                "0.5",
                "--blocks-per-node",
                "2",
                "--seed",
                "3",
                "--trace-out",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out
        records = _load_jsonl(path)
        assert records
        assert {"NodeDown", "NodeUp"} & {record["type"] for record in records}

    def test_emulate_without_flag_prints_no_trace_line(self, capsys):
        code = main(
            ["emulate", "--nodes", "8", "--ratio", "0.25", "--blocks-per-node", "2"]
        )
        assert code == 0
        assert "trace written" not in capsys.readouterr().out
