"""End-to-end integration tests across the whole stack."""

import pytest

from repro.availability.generator import build_group_hosts
from repro.core.placement import AdaptPlacement, RandomPlacement
from repro.mapreduce.job import JobConf, MapJob
from repro.mapreduce.shuffle import ShufflePhase
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.runtime.runner import run_map_phase
from repro.workloads import TerasortWorkload


class TestClientToJobFlow:
    """copyFromLocal -> run job -> adapt -> run again (the shell workflow)."""

    def test_adapt_command_improves_subsequent_job(self):
        hosts = build_group_hosts(24, 0.5)
        config = ClusterConfig(seed=4)
        workload = TerasortWorkload()
        gamma = workload.gamma_seconds(config.block_size_bytes)

        def run_once(adapt_in_place: bool) -> float:
            cluster = build_cluster(hosts, config, default_gamma=gamma)
            cluster.sim.run(until=0.0)
            f = cluster.client.copy_from_local(
                "in", num_blocks=240, policy=RandomPlacement(), gamma=gamma
            )
            if adapt_in_place:
                report = cluster.client.adapt("in")
                assert report.move_count > 0
            job = MapJob.uniform(JobConf(), f, gamma)
            cluster.jobtracker.submit(job)
            cluster.run_until_job_done()
            return job.makespan

        plain = run_once(adapt_in_place=False)
        adapted = run_once(adapt_in_place=True)
        assert adapted < plain

    def test_copy_from_local_with_flag_matches_policy(self):
        hosts = build_group_hosts(16, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=5))
        cluster.sim.run(until=0.0)
        f = cluster.client.copy_from_local("flagged", num_blocks=160, adapt_enabled=True)
        dist = cluster.client.block_distribution("flagged")
        dedicated = [cluster.ids.id_of(h.host_id) for h in hosts if h.is_dedicated]
        flaky = [cluster.ids.id_of(h.host_id) for h in hosts if not h.is_dedicated]
        assert sum(dist[n] for n in dedicated) > sum(dist[n] for n in flaky)


class TestEstimatedPredictorLoop:
    """Heartbeat-estimated parameters end-to-end (ablation A1 machinery)."""

    def test_estimates_learn_during_warmup(self):
        hosts = build_group_hosts(12, 0.5)
        config = ClusterConfig(seed=6, oracle_estimates=False)
        cluster = build_cluster(hosts, config)
        cluster.sim.run(until=600.0)
        predictor = cluster.namenode.predictor
        flaky = [h for h in hosts if not h.is_dedicated][0]
        stable = [h for h in hosts if h.is_dedicated][0]
        flaky_est = predictor.estimate(cluster.ids.id_of(flaky.host_id))
        stable_est = predictor.estimate(cluster.ids.id_of(stable.host_id))
        # After 10 minutes of heartbeats the flaky node's estimated MTBI
        # must be clearly below the dedicated node's.
        assert flaky_est.mtbi < stable_est.mtbi / 5

    def test_estimated_adapt_still_beats_existing(self):
        hosts = build_group_hosts(24, 0.5)
        config = ClusterConfig(seed=7, oracle_estimates=False)
        existing = run_map_phase(
            hosts, config, "existing", blocks_per_node=8, warmup_seconds=600.0
        )
        adapt = run_map_phase(
            hosts, config, "adapt", blocks_per_node=8, warmup_seconds=600.0
        )
        assert adapt.elapsed < existing.elapsed


class TestMapThenShuffle:
    def test_full_job_with_reduce_phase(self):
        hosts = build_group_hosts(8, 0.0)  # failure-free for determinism
        config = ClusterConfig(seed=8)
        workload = TerasortWorkload()
        gamma = workload.gamma_seconds(config.block_size_bytes)
        cluster = build_cluster(hosts, config, default_gamma=gamma)
        f = cluster.client.copy_from_local("in", num_blocks=16, policy=AdaptPlacement(), gamma=gamma)
        job = MapJob.uniform(JobConf(), f, gamma)
        done = {}

        def start_shuffle(finished_job):
            output_nodes = {
                t.task_id: t.completed_by.node_id for t in finished_job.tasks
            }
            reducers = sorted({t.completed_by.node_id for t in finished_job.tasks})[:4]
            phase = ShufflePhase(cluster.sim, cluster.network)
            phase.run(
                map_output_nodes=output_nodes,
                map_output_bytes=f.size_bytes * workload.map_output_ratio / f.num_blocks,
                reducer_nodes=reducers,
                reduce_gamma=workload.reduce_gamma_seconds(f.size_bytes, 4),
                on_complete=lambda r: done.update(result=r),
            )

        cluster.jobtracker.submit(job, on_complete=start_shuffle)
        cluster.run_until_job_done()
        # Drain the shuffle phase.
        while "result" not in done and cluster.sim.step():
            pass
        assert "result" in done
        assert done["result"].finished_at > job.finished_at


class TestScaleSanity:
    def test_medium_cluster_event_budget(self):
        # A 64-node emulation run must finish within a modest event budget
        # (guards against event-loop explosions creeping in).
        hosts = build_group_hosts(64, 0.5)
        result = run_map_phase(
            hosts, ClusterConfig(seed=9), "adapt", blocks_per_node=10,
            max_events=2_000_000,
        )
        assert result.elapsed > 0
