"""The CI smoke campaign: three scenarios, strict audit, golden report.

``examples/chaos_smoke.json`` is the checked-in campaign the CI
``chaos-smoke`` job replays. The pinned :class:`ResilienceReport`
numbers are golden — exact ``==`` on floats — so any trajectory drift
under the composed gray+partition+storm load fails loudly here before
it reaches a benchmark.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.chaosrun import run_chaos_point
from repro.experiments.config import EmulationConfig, Strategy
from repro.simulator.scenarios import ChaosCampaign

CAMPAIGN_PATH = Path(__file__).parents[2] / "examples" / "chaos_smoke.json"

CONFIG = EmulationConfig(
    node_count=8,
    interrupted_ratio=0.5,
    blocks_per_node=2.0,
    seed=11,
    replication_monitor=True,
)


def run_smoke():
    campaign = ChaosCampaign.load(str(CAMPAIGN_PATH))
    return run_chaos_point(CONFIG, Strategy("adapt", 2), campaign, audit="strict")


@pytest.mark.slow
class TestSmokeCampaign:
    def test_campaign_file_parses_to_three_scenarios(self):
        campaign = ChaosCampaign.load(str(CAMPAIGN_PATH))
        assert campaign.name == "smoke"
        assert [s.kind for s in campaign.scenarios] == ["gray", "partition", "storm"]

    def test_golden_resilience_report(self):
        outcome = run_smoke()
        r = outcome.report
        assert [(a.kind, a.targets) for a in r.activations] == [
            ("gray", ("node-00001",)),
            ("partition", ("node-00003", "node-00007")),
            ("storm", ("node-00004", "node-00005")),
        ]
        assert r.makespan == 290.8236927387871
        assert r.baseline_makespan == 103.108864
        assert r.makespan_inflation == 2.8205498679413936
        assert r.slo_attained is True
        assert (r.interruptions, r.node_returns) == (41, 39)
        assert r.detections == 14
        assert r.mean_time_to_detect == 6.8841695076413885
        assert r.max_time_to_detect == 8.342203736183308
        assert r.undetected_downs == 1
        assert r.rereplications == 1
        assert r.mean_time_to_rereplicate == 112.02940228941435
        assert r.unrecovered_blocks == 0

    def test_report_is_seed_stable(self):
        first = run_smoke()
        second = run_smoke()
        assert first.report == second.report
        assert first.report.to_json() == second.report.to_json()


@pytest.mark.slow
class TestChaosCli:
    ARGS = [
        "chaos",
        "--campaign", str(CAMPAIGN_PATH),
        "--policy", "adapt",
        "--replicas", "2",
        "--nodes", "8",
        "--ratio", "0.5",
        "--blocks-per-node", "2",
        "--seed", "11",
        "--replication-monitor",
        "--audit", "strict",
    ]

    def test_cli_matches_the_library_run(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(self.ARGS + ["--report", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resilience report" in out
        written = json.loads(report_path.read_text())
        assert written == run_smoke().report.to_jsonable()

    def test_emulate_accepts_a_chaos_campaign(self, capsys):
        code = main(
            [
                "emulate",
                "--policy", "adapt",
                "--nodes", "8",
                "--ratio", "0.5",
                "--blocks-per-node", "2",
                "--seed", "11",
                "--chaos", str(CAMPAIGN_PATH),
                "--audit", "strict",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "elapsed_s" in out
        assert "Resilience report" in out
