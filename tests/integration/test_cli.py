"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "ADAPT" in capsys.readouterr().out

    def test_model_command(self, capsys):
        assert main(["model", "--gamma", "12", "--mtbi", "20", "--recovery", "8"]) == 0
        out = capsys.readouterr().out
        assert "E[T]" in out
        assert "27.404" in out  # formula 5 at these parameters

    def test_groups_command(self, capsys):
        assert main(["groups"]) == 0
        out = capsys.readouterr().out
        assert "group-1" in out and "20" in out

    def test_placement_command(self, capsys):
        code = main(
            ["placement", "--nodes", "16", "--ratio", "0.5", "--blocks-per-node", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adapt" in out and "existing" in out and "naive" in out
        assert "dedicated" in out

    def test_emulate_command(self, capsys):
        code = main(
            [
                "emulate",
                "--policy", "adapt",
                "--nodes", "12",
                "--blocks-per-node", "4",
                "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "elapsed_s" in out
        assert "locality" in out

    def test_emulate_audit_flag(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "audit.json"
        code = main(
            [
                "emulate",
                "--policy", "existing",
                "--nodes", "8",
                "--blocks-per-node", "3",
                "--seed", "2",
                "--audit", "strict",
                "--audit-out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "audit report (strict mode) written to" in out
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True
        assert payload["mode"] == "strict"

    def test_emulate_audit_out_implies_report(self, capsys, tmp_path):
        out_path = tmp_path / "audit.json"
        code = main(
            [
                "emulate",
                "--policy", "existing",
                "--nodes", "8",
                "--blocks-per-node", "3",
                "--seed", "2",
                "--audit-out", str(out_path),
            ]
        )
        assert code == 0
        assert "report mode" in capsys.readouterr().out
        assert out_path.exists()

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "--policy", "existing",
                "--nodes", "32",
                "--tasks-per-node", "4",
                "--seed", "2",
            ]
        )
        assert code == 0
        assert "elapsed_s" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        code = main(["table1", "--nodes", "60", "--horizon-days", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MTBI" in out
        assert "160290" in out  # the paper's reference values are shown
