"""Failure-injection scenario tests: the nasty interleavings.

Each test scripts an adversarial downtime pattern through trace replay and
checks that the stack handles the interleaving correctly: flapping nodes,
failures during fetches (both endpoints), failure during a speculation
race, failure of the rebalance target, and simultaneous transitions.
"""

import pytest

from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.core.placement import RandomPlacement
from repro.mapreduce.job import AttemptState, JobConf, MapJob
from repro.runtime.cluster import ClusterConfig, build_cluster

GAMMA = 10.0
HORIZON = 1_000_000.0


def build(windows, n=3, access=True, detection="oracle", bandwidth=8.0, seed=1, **kw):
    hosts = [HostAvailability(host_id=f"n{i}") for i in range(n)]
    traces = [
        AvailabilityTrace(f"n{i}", HORIZON, windows.get(i, ())) for i in range(n)
    ]
    config = ClusterConfig(
        bandwidth_mbps=bandwidth,
        detection=detection,
        access_during_downtime=access,
        seed=seed,
        **kw,
    )
    return build_cluster(hosts, config, traces=traces, default_gamma=GAMMA)


def submit(cluster, blocks, replication=1, speculative=True):
    f = cluster.client.copy_from_local(
        "in", num_blocks=blocks, replication=replication,
        policy=RandomPlacement(), gamma=GAMMA,
    )
    job = MapJob.uniform(JobConf(speculative=speculative), f, GAMMA)
    cluster.jobtracker.submit(job)
    return job


class TestFlapping:
    def test_rapid_flapping_node_makes_progress(self):
        # Node 0 is up for only 4s at a time (< gamma=10): its local tasks
        # can never finish there and must migrate or wait forever.
        windows = {0: [(float(t), float(t + 6)) for t in range(4, 100_000, 10)]}
        cluster = build(windows, n=2)
        job = submit(cluster, blocks=4)
        cluster.run_until_job_done()
        assert job.is_complete
        # Anything placed on n0 completed elsewhere (remotely on n1).
        for task in job.tasks:
            holders = cluster.namenode.replica_holders(task.block.block_id)
            if holders == {cluster.ids.id_of("n0")}:
                assert task.completed_by.node_id == cluster.ids.id_of("n1")

    def test_flapping_with_hard_storage_still_completes(self):
        # Even unreadable-when-down storage completes: fetches land in the
        # up windows (6s at 32 Mb/s moves 24 MB; blocks are 8 MB here).
        windows = {0: [(float(t), float(t + 4)) for t in range(6, 100_000, 10)]}
        cluster = build(
            windows, n=2, access=False, bandwidth=32.0,
            block_size_bytes=8 * 1024 * 1024,
        )
        job = submit(cluster, blocks=4)
        cluster.run_until_job_done(max_events=2_000_000)
        assert job.is_complete


class TestFetchInterruption:
    def test_source_dies_mid_fetch_hard_mode(self):
        # n1 is down at ingest, so both blocks land on n0. n1 returns and
        # steals remotely; n0 dies mid-transfer (fetches take ~67s). With
        # hard storage semantics the fetch aborts and retries after n0
        # returns.
        windows = {0: [(12.0, 40.0)], 1: [(0.0, 5.0)]}
        cluster = build(windows, n=2, access=False)
        cluster.sim.run(until=0.0)
        job = submit(cluster, blocks=2)
        cluster.run_until_job_done()
        assert job.is_complete
        assert cluster.namenode.replica_holders(job.tasks[0].block.block_id) == {
            cluster.ids.id_of("n0")
        }
        aborted = [
            a
            for t in job.tasks
            for a in t.attempts
            if a.state is AttemptState.FAILED and a.source_node is not None
        ]
        assert aborted, "expected a fetch torn down by the source's death"
        # The wasted partial transfer is charged to migration.
        assert cluster.metrics.migration_time > 0

    def test_reader_dies_mid_fetch(self):
        # n1 starts a remote fetch and dies mid-transfer; the partial
        # transfer is charged to migration and the task recovers.
        windows = {1: [(15.0, 100_000.0)]}
        cluster = build(windows, n=3)
        job = submit(cluster, blocks=3)
        cluster.run_until_job_done()
        assert job.is_complete
        for task in job.tasks:
            n1 = cluster.ids.id_of("n1")
            assert task.completed_by.node_id != n1 or task.completed_by.finished_at < 15.0


class TestSimultaneousEvents:
    def test_all_nodes_down_and_back(self):
        # Every node goes down at t=30 and returns at t=60: the job stalls
        # completely, then finishes.
        windows = {i: [(30.0, 60.0)] for i in range(3)}
        cluster = build(windows, n=3)
        job = submit(cluster, blocks=6)
        cluster.run_until_job_done()
        assert job.is_complete
        assert job.makespan >= 60.0
        assert cluster.metrics.recovery_time == pytest.approx(90.0, abs=1.0)

    def test_down_at_ingest_time(self):
        # A node down exactly at t=0 must receive no blocks (testbed
        # semantics) and the job must still complete.
        windows = {0: [(0.0, 50.0)]}
        cluster = build(windows, n=3)
        cluster.sim.run(until=0.0)
        job = submit(cluster, blocks=6)
        cluster.run_until_job_done()
        dist = cluster.client.block_distribution("in")
        assert dist[cluster.ids.id_of("n0")] == 0
        assert job.is_complete


class TestSpeculationRaces:
    def test_speculative_winner_kills_original_cleanly(self):
        # n0 dies silently (heartbeat mode, 600s timeout) holding a task;
        # n1 speculates. When n0 returns at t=200, its zombie state must
        # not resurrect the completed task.
        windows = {0: [(5.0, 200.0)]}
        cluster = build(
            windows, n=2, detection="heartbeat",
            heartbeat_interval=60.0, heartbeat_miss_threshold=10,
        )
        job = submit(cluster, blocks=2, replication=2)
        cluster.run_until_job_done()
        assert job.is_complete
        # Run well past n0's return: no stray events may fire.
        cluster.sim.run(until=400.0)
        for task in job.tasks:
            succeeded = [a for a in task.attempts if a.state is AttemptState.SUCCEEDED]
            assert len(succeeded) == 1

    def test_speculation_capped_per_task(self):
        windows = {0: [(5.0, 100_000.0)]}
        cluster = build(
            windows, n=4, detection="heartbeat",
            heartbeat_interval=60.0, heartbeat_miss_threshold=10,
            max_speculative_per_task=1,
        )
        job = submit(cluster, blocks=2, replication=2)
        cluster.run_until_job_done()
        for task in job.tasks:
            spec = [a for a in task.attempts if a.speculative]
            # One speculative attempt at a time; retries only after failure.
            live_spec_peak = len([a for a in spec if a.state is AttemptState.KILLED or a.state is AttemptState.SUCCEEDED or a.state is AttemptState.FAILED])
            assert live_spec_peak == len(spec)


class TestRebalanceUnderFailures:
    def test_adapt_command_with_down_nodes(self):
        # `adapt` planned while a node is down: moves must avoid it as a
        # destination (it is not in the placement views).
        windows = {2: [(0.0, 100_000.0)]}
        cluster = build(windows, n=3)
        cluster.sim.run(until=0.0)
        cluster.client.copy_from_local(
            "f", num_blocks=12, policy=RandomPlacement(), gamma=GAMMA
        )
        report = cluster.client.adapt("f")
        for move in report.moves:
            assert move.destination != cluster.ids.id_of("n2")
