"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.util.rng import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A fresh deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def rng2() -> RandomSource:
    """A second, independent deterministic random source."""
    return RandomSource(67890)
