"""Golden-seed determinism: the bus refactor must be byte-identical.

These values were captured from the pre-bus cluster wiring (direct
callback chains). The event-bus rewrite replaced every subscription with
phase-ordered dispatch; these tests pin the end-to-end numbers to prove
the dispatch order — and therefore every simulated trajectory — is
unchanged. Exact ``==`` on floats is deliberate: any reordering of
handler execution shows up as a different trajectory, not a rounding
wobble.
"""

import pytest

from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.experiments.parallel import CellSpec, SweepExecutor


@pytest.mark.slow
class TestGoldenScenarios:
    def test_scenario_baseline_adapt(self):
        # Plain interruptions, heartbeat detection, no monitor.
        config = EmulationConfig(
            node_count=16, interrupted_ratio=0.5, blocks_per_node=4.0, seed=7
        )
        result = run_emulation_point(config, Strategy("adapt", 1))
        assert result.elapsed == 343.5642303163495
        assert result.data_locality == 0.796875
        b = result.breakdown
        assert b.rework == 99.20506020196304
        assert b.recovery == 1335.170865499867
        assert b.migration == 2076.041370867412
        assert b.idle == 1211.5708815433015
        assert b.useful == 768.0
        assert b.duplicate == 7.039506949048473

    def test_scenario_oracle_monitor_permanent(self):
        # Oracle detection + replication monitor + permanent failures.
        config = EmulationConfig(
            node_count=16,
            interrupted_ratio=0.5,
            blocks_per_node=4.0,
            seed=11,
            detection="oracle",
            replication_monitor=True,
            permanent_failure_rate=0.3,
            permanent_failure_horizon=300.0,
        )
        result = run_emulation_point(config, Strategy("existing", 2))
        assert result.elapsed == 309.8130703176171
        assert result.data_locality == 0.859375
        assert result.durability.summary_row() == {
            "permanent_failures": 2,
            "replicas_lost": 11,
            "blocks_lost": 0,
            "rereplications_completed": 2,
            "rereplication_bytes": 167517271.44229978,
            "rereplication_seconds": 383.2190343340652,
            "rereplication_failures": 2,
            "rereplication_retries": 2,
            "overreplicated_removed": 1,
            "degraded_read_retries": 0,
        }
        assert result.breakdown.rework == 93.04414959031138
        assert result.breakdown.migration == 1293.2472201912688

    def test_scenario_heartbeat_monitor_block_loss(self):
        # Heartbeat detection lag + monitor + enough permanent failures to
        # actually lose blocks (exercises the BlockLost pipeline).
        config = EmulationConfig(
            node_count=12,
            interrupted_ratio=0.5,
            blocks_per_node=3.0,
            seed=3,
            replication_monitor=True,
            permanent_failure_rate=0.25,
            permanent_failure_horizon=200.0,
        )
        result = run_emulation_point(config, Strategy("adapt", 2))
        assert result.elapsed == 253.108864
        assert result.data_locality == 0.8888888888888888
        assert result.durability.summary_row() == {
            "permanent_failures": 3,
            "replicas_lost": 25,
            "blocks_lost": 4,
            "rereplications_completed": 1,
            "rereplication_bytes": 141263056.7742284,
            "rereplication_seconds": 352.209230248232,
            "rereplication_failures": 1,
            "rereplication_retries": 1,
            "overreplicated_removed": 0,
            "degraded_read_retries": 2,
        }
        assert result.breakdown.rework == 53.78357051589564
        assert result.breakdown.migration == 665.7965668280153
        assert result.breakdown.recovery == 1190.5447718717796


@pytest.mark.slow
class TestGoldenAcrossProcesses:
    """Worker processes and the run cache must hit the same golden values.

    Extends the golden pins to the parallel execution layer: the same
    scenario dispatched through a 2-worker :class:`SweepExecutor` (and
    replayed from its cache) reproduces the serial numbers exactly.
    """

    def test_worker_pool_and_cache_match_golden(self, tmp_path):
        config = EmulationConfig(
            node_count=16, interrupted_ratio=0.5, blocks_per_node=4.0, seed=7
        )
        cells = [
            CellSpec("emulation", config, Strategy("adapt", 1), 7),
            CellSpec("emulation", config, Strategy("existing", 1), 7),
        ]
        executor = SweepExecutor(jobs=2, cache_dir=tmp_path)
        adapt, _existing = executor.run_cells(cells)
        assert adapt.elapsed == 343.5642303163495
        assert adapt.data_locality == 0.796875
        assert adapt.breakdown.rework == 99.20506020196304
        assert adapt.breakdown.recovery == 1335.170865499867
        assert adapt.breakdown.migration == 2076.041370867412

        replay = SweepExecutor(jobs=1, cache_dir=tmp_path)
        cached, _ = replay.run_cells(cells)
        assert replay.cache_hits == 2
        assert cached == adapt


class TestSameSeedSameResult:
    def test_two_runs_identical(self):
        config = EmulationConfig(
            node_count=8,
            interrupted_ratio=0.5,
            blocks_per_node=2.0,
            seed=42,
            replication_monitor=True,
            permanent_failure_rate=0.2,
            permanent_failure_horizon=150.0,
        )
        first = run_emulation_point(config, Strategy("adapt", 2))
        second = run_emulation_point(config, Strategy("adapt", 2))
        assert first.elapsed == second.elapsed
        assert first.data_locality == second.data_locality
        assert first.breakdown == second.breakdown
        assert first.durability.summary_row() == second.durability.summary_row()
        assert first.interruptions == second.interruptions
        assert first.node_returns == second.node_returns

    def test_different_seed_different_trajectory(self):
        base = EmulationConfig(node_count=8, interrupted_ratio=0.5, blocks_per_node=2.0, seed=1)
        other = EmulationConfig(node_count=8, interrupted_ratio=0.5, blocks_per_node=2.0, seed=2)
        a = run_emulation_point(base, Strategy("adapt", 1))
        b = run_emulation_point(other, Strategy("adapt", 1))
        assert a.elapsed != b.elapsed
