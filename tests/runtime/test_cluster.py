"""Tests for cluster assembly and configuration."""

import pytest

from repro.availability.generator import HostAvailability, build_group_hosts
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.util.units import MB, mbit_per_s


class TestClusterConfig:
    def test_defaults_match_table3(self):
        config = ClusterConfig()
        assert config.bandwidth_mbps == 8.0
        assert config.block_size_bytes == 64 * MB

    def test_link_rates(self):
        config = ClusterConfig(bandwidth_mbps=4.0)
        assert config.uplink_bps == pytest.approx(mbit_per_s(4.0))
        assert config.downlink_bps == pytest.approx(mbit_per_s(4.0))
        asym = ClusterConfig(bandwidth_mbps=1.0, downlink_mbps=15.0)
        assert asym.downlink_bps == pytest.approx(mbit_per_s(15.0))

    def test_nominal_fetch(self):
        config = ClusterConfig(bandwidth_mbps=8.0)
        assert config.nominal_fetch_seconds() == pytest.approx(67.1, abs=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(detection="psychic")
        with pytest.raises(ValueError):
            ClusterConfig(slots_per_node=0)


class TestBuildCluster:
    def test_full_assembly(self):
        hosts = build_group_hosts(8, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1))
        assert cluster.node_count == 8
        assert cluster.total_slots == 8
        assert cluster.namenode.datanode_ids == sorted(
            cluster.ids.id_of(h.host_id) for h in hosts
        )
        assert cluster.node_names == sorted(h.host_id for h in hosts)
        assert cluster.heartbeats is not None  # default detection

    def test_oracle_mode_has_no_heartbeats(self):
        hosts = build_group_hosts(4, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1, detection="oracle"))
        assert cluster.heartbeats is None

    def test_oracle_estimates_pinned(self):
        hosts = build_group_hosts(8, 1.0)
        cluster = build_cluster(hosts, ClusterConfig(seed=1, oracle_estimates=True))
        est = cluster.namenode.predictor.estimate(cluster.ids.id_of(hosts[0].host_id))
        assert est.mtbi == pytest.approx(hosts[0].mtbi)

    def test_estimated_mode_starts_at_prior(self):
        hosts = build_group_hosts(4, 1.0)
        cluster = build_cluster(
            hosts, ClusterConfig(seed=1, oracle_estimates=False, prior_mtbi=777.0)
        )
        est = cluster.namenode.predictor.estimate(cluster.ids.id_of(hosts[0].host_id))
        assert est.mtbi == pytest.approx(777.0, rel=0.01)

    def test_oracle_detection_marks_dead_instantly(self):
        hosts = build_group_hosts(2, 1.0)  # both interrupted (MTBI 10-20s)
        cluster = build_cluster(hosts, ClusterConfig(seed=3, detection="oracle"))
        cluster.sim.run(until=100.0)
        # At some point during the window, state changes were mirrored:
        # after running, believed liveness equals physical state.
        for host in hosts:
            nid = cluster.ids.id_of(host.host_id)
            assert cluster.namenode.is_live(nid) == (
                not cluster.injector.is_down(nid)
            )

    def test_duplicate_host_ids_rejected(self):
        hosts = [HostAvailability(host_id="x"), HostAvailability(host_id="x")]
        with pytest.raises(ValueError, match="unique"):
            build_cluster(hosts, ClusterConfig())

    def test_empty_hosts_rejected(self):
        with pytest.raises(ValueError):
            build_cluster([], ClusterConfig())

    def test_trace_mismatch_rejected(self):
        from repro.availability.traces import AvailabilityTrace

        hosts = [HostAvailability(host_id="a")]
        traces = [AvailabilityTrace("b", 100.0, ())]
        with pytest.raises(ValueError, match="parallel"):
            build_cluster(hosts, ClusterConfig(), traces=traces)

    def test_failure_streams_keyed_by_node_id(self):
        # The same host id must see the same interruption times regardless
        # of the rest of the population (policy-comparison invariant).
        def first_down_time(n):
            hosts = build_group_hosts(n, 1.0)
            cluster = build_cluster(hosts, ClusterConfig(seed=9, detection="oracle"))
            cluster.sim.run(until=50.0)
            return cluster.injector.episode_count(cluster.ids.id_of("node-00000"))

        assert first_down_time(2) == first_down_time(6)
