"""Tests for cluster assembly and configuration."""

import pytest

from repro.availability.generator import HostAvailability, build_group_hosts
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.util.units import MB, mbit_per_s


class TestClusterConfig:
    def test_defaults_match_table3(self):
        config = ClusterConfig()
        assert config.bandwidth_mbps == 8.0
        assert config.block_size_bytes == 64 * MB

    def test_link_rates(self):
        config = ClusterConfig(bandwidth_mbps=4.0)
        assert config.uplink_bps == pytest.approx(mbit_per_s(4.0))
        assert config.downlink_bps == pytest.approx(mbit_per_s(4.0))
        asym = ClusterConfig(bandwidth_mbps=1.0, downlink_mbps=15.0)
        assert asym.downlink_bps == pytest.approx(mbit_per_s(15.0))

    def test_nominal_fetch(self):
        config = ClusterConfig(bandwidth_mbps=8.0)
        assert config.nominal_fetch_seconds() == pytest.approx(67.1, abs=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(detection="psychic")
        with pytest.raises(ValueError):
            ClusterConfig(slots_per_node=0)


class TestBuildCluster:
    def test_full_assembly(self):
        hosts = build_group_hosts(8, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1))
        assert cluster.node_count == 8
        assert cluster.total_slots == 8
        assert cluster.namenode.datanode_ids == sorted(
            cluster.ids.id_of(h.host_id) for h in hosts
        )
        assert cluster.node_names == sorted(h.host_id for h in hosts)
        assert cluster.heartbeats is not None  # default detection

    def test_oracle_mode_has_no_heartbeats(self):
        hosts = build_group_hosts(4, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1, detection="oracle"))
        assert cluster.heartbeats is None

    def test_oracle_estimates_pinned(self):
        hosts = build_group_hosts(8, 1.0)
        cluster = build_cluster(hosts, ClusterConfig(seed=1, oracle_estimates=True))
        est = cluster.namenode.predictor.estimate(cluster.ids.id_of(hosts[0].host_id))
        assert est.mtbi == pytest.approx(hosts[0].mtbi)

    def test_estimated_mode_starts_at_prior(self):
        hosts = build_group_hosts(4, 1.0)
        cluster = build_cluster(
            hosts, ClusterConfig(seed=1, oracle_estimates=False, prior_mtbi=777.0)
        )
        est = cluster.namenode.predictor.estimate(cluster.ids.id_of(hosts[0].host_id))
        assert est.mtbi == pytest.approx(777.0, rel=0.01)

    def test_oracle_detection_marks_dead_instantly(self):
        hosts = build_group_hosts(2, 1.0)  # both interrupted (MTBI 10-20s)
        cluster = build_cluster(hosts, ClusterConfig(seed=3, detection="oracle"))
        cluster.sim.run(until=100.0)
        # At some point during the window, state changes were mirrored:
        # after running, believed liveness equals physical state.
        for host in hosts:
            nid = cluster.ids.id_of(host.host_id)
            assert cluster.namenode.is_live(nid) == (
                not cluster.injector.is_down(nid)
            )

    def test_duplicate_host_ids_rejected(self):
        hosts = [HostAvailability(host_id="x"), HostAvailability(host_id="x")]
        with pytest.raises(ValueError, match="unique"):
            build_cluster(hosts, ClusterConfig())

    def test_empty_hosts_rejected(self):
        with pytest.raises(ValueError):
            build_cluster([], ClusterConfig())

    def test_trace_mismatch_rejected(self):
        from repro.availability.traces import AvailabilityTrace

        hosts = [HostAvailability(host_id="a")]
        traces = [AvailabilityTrace("b", 100.0, ())]
        with pytest.raises(ValueError, match="parallel"):
            build_cluster(hosts, ClusterConfig(), traces=traces)

    def test_failure_streams_keyed_by_node_id(self):
        # The same host id must see the same interruption times regardless
        # of the rest of the population (policy-comparison invariant).
        def first_down_time(n):
            hosts = build_group_hosts(n, 1.0)
            cluster = build_cluster(hosts, ClusterConfig(seed=9, detection="oracle"))
            cluster.sim.run(until=50.0)
            return cluster.injector.episode_count(cluster.ids.id_of("node-00000"))

        assert first_down_time(2) == first_down_time(6)


class TestBuildKernel:
    """Bulk build path: pregen fan-out, bulk wiring, build profile."""

    @staticmethod
    def _event_sequence(cluster, until):
        from repro.simulator.events import NodeDown, NodeUp, Phase

        seq = []
        cluster.bus.subscribe(
            NodeDown, lambda e: seq.append(("down", e.node_id, e.time)), Phase.ACCOUNTING
        )
        cluster.bus.subscribe(
            NodeUp, lambda e: seq.append(("up", e.node_id, e.time)), Phase.ACCOUNTING
        )
        while cluster.sim.now < until and cluster.sim.step():
            pass
        cluster.stop()
        return seq

    def test_pregen_build_byte_identical_to_lazy(self):
        hosts = build_group_hosts(40, 0.8, service_distribution="lognormal")
        lazy = self._event_sequence(
            build_cluster(hosts, ClusterConfig(seed=7, stationary_burn_in=200.0)),
            3000.0,
        )
        pregen = self._event_sequence(
            build_cluster(
                hosts,
                ClusterConfig(
                    seed=7, stationary_burn_in=200.0, pregen_horizon=4000.0
                ),
            ),
            3000.0,
        )
        assert lazy == pregen
        assert len(lazy) > 50

    def test_build_profile_populated(self):
        hosts = build_group_hosts(20, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1, pregen_horizon=1000.0))
        profile = cluster.build_profile
        assert profile is not None
        assert profile.backend == "scalar"
        assert profile.jobs == 1
        assert profile.pregen_seconds > 0.0
        assert profile.object_construction_seconds > 0.0
        assert profile.bus_wiring_seconds >= 0.0
        assert profile.total_seconds >= profile.pregen_seconds
        as_dict = profile.as_dict()
        assert as_dict["backend"] == "scalar"
        cluster.stop()

    def test_lazy_names_render_at_reporting_boundary(self):
        hosts = build_group_hosts(4, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1))
        names = cluster.services.names
        for host in hosts:
            assert f"datanode:{host.host_id}" in names
            assert f"tasktracker:{host.host_id}" in names
        cluster.stop()

    def test_numpy_backend_cluster_builds(self):
        pytest.importorskip("numpy")
        hosts = build_group_hosts(30, 0.8, service_distribution="lognormal")
        cluster = build_cluster(
            hosts,
            ClusterConfig(seed=3, pregen_horizon=2000.0, avail_backend="numpy"),
        )
        assert cluster.build_profile.backend == "numpy"
        seq = self._event_sequence(cluster, 1500.0)
        assert len(seq) > 10

    def test_config_validation(self):
        with pytest.raises(ValueError, match="avail_backend"):
            ClusterConfig(avail_backend="cuda")
        with pytest.raises(ValueError, match="pregen_jobs"):
            ClusterConfig(pregen_jobs=0)
