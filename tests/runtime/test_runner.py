"""Tests for the end-to-end map-phase runner."""

import pytest

from repro.availability.generator import build_group_hosts
from repro.core.placement import AdaptPlacement
from repro.mapreduce.job import JobConf
from repro.runtime.cluster import ClusterConfig
from repro.runtime.runner import run_map_phase
from repro.workloads import GrepWorkload, TerasortWorkload


class TestRunMapPhase:
    def test_basic_run(self):
        hosts = build_group_hosts(8, 0.5)
        result = run_map_phase(hosts, ClusterConfig(seed=1), "existing", blocks_per_node=4)
        assert result.policy == "existing"
        assert result.num_tasks == 32
        assert result.elapsed > 0
        assert 0.0 <= result.data_locality <= 1.0

    def test_policy_object_accepted(self):
        hosts = build_group_hosts(6, 0.5)
        result = run_map_phase(
            hosts, ClusterConfig(seed=1), AdaptPlacement(), blocks_per_node=4
        )
        assert result.policy == "adapt"

    def test_explicit_block_count(self):
        hosts = build_group_hosts(4, 0.0)
        result = run_map_phase(hosts, ClusterConfig(seed=1), "existing", num_blocks=10)
        assert result.num_tasks == 10

    def test_overhead_ratios_present(self):
        hosts = build_group_hosts(6, 0.5)
        result = run_map_phase(hosts, ClusterConfig(seed=2), "existing", blocks_per_node=4)
        ratios = result.overhead_ratios
        assert set(ratios) == {"rework", "recovery", "migration", "misc", "total"}
        assert ratios["total"] == pytest.approx(
            ratios["rework"] + ratios["recovery"] + ratios["migration"] + ratios["misc"]
        )

    def test_summary_row(self):
        hosts = build_group_hosts(4, 0.0)
        row = run_map_phase(hosts, ClusterConfig(seed=1), "existing", blocks_per_node=2).summary_row()
        assert row["policy"] == "existing"
        assert row["nodes"] == 4
        assert "migration_overhead" in row

    def test_workload_changes_gamma(self):
        hosts = build_group_hosts(4, 0.0)
        slow = run_map_phase(
            hosts, ClusterConfig(seed=1), "existing", blocks_per_node=2,
            workload=TerasortWorkload(),
        )
        fast = run_map_phase(
            hosts, ClusterConfig(seed=1), "existing", blocks_per_node=2,
            workload=GrepWorkload(),
        )
        assert fast.elapsed < slow.elapsed

    def test_deterministic_given_seed(self):
        hosts = build_group_hosts(8, 0.5)
        a = run_map_phase(hosts, ClusterConfig(seed=7), "adapt", blocks_per_node=4)
        b = run_map_phase(hosts, ClusterConfig(seed=7), "adapt", blocks_per_node=4)
        assert a.elapsed == b.elapsed
        assert a.data_locality == b.data_locality

    def test_seed_changes_outcome(self):
        hosts = build_group_hosts(8, 0.5)
        a = run_map_phase(hosts, ClusterConfig(seed=7), "existing", blocks_per_node=4)
        b = run_map_phase(hosts, ClusterConfig(seed=8), "existing", blocks_per_node=4)
        assert a.elapsed != b.elapsed

    def test_replication(self):
        hosts = build_group_hosts(8, 0.5)
        result = run_map_phase(
            hosts, ClusterConfig(seed=1), "existing", replication=2, blocks_per_node=4
        )
        assert result.replication == 2

    def test_custom_job_conf(self):
        hosts = build_group_hosts(4, 0.5)
        conf = JobConf(name="custom", speculative=False)
        result = run_map_phase(
            hosts, ClusterConfig(seed=1), "existing", blocks_per_node=2, job_conf=conf
        )
        assert result.elapsed > 0

    def test_audit_report_exported(self, tmp_path):
        import json

        hosts = build_group_hosts(6, 0.5)
        out = tmp_path / "audit.json"
        result = run_map_phase(
            hosts, ClusterConfig(seed=2), "existing", blocks_per_node=3,
            audit_out=str(out),  # implies report mode
        )
        assert result.elapsed > 0
        payload = json.loads(out.read_text())
        assert payload["mode"] == "report"
        assert payload["ok"] is True
        assert payload["final_audit_run"] is True

    def test_audit_strict_clean_run(self):
        hosts = build_group_hosts(6, 0.5)
        result = run_map_phase(
            hosts, ClusterConfig(seed=2), "existing", blocks_per_node=3, audit="strict"
        )
        assert result.elapsed > 0

    def test_audit_does_not_perturb_trajectory(self):
        hosts = build_group_hosts(6, 0.5)
        plain = run_map_phase(hosts, ClusterConfig(seed=4), "adapt", blocks_per_node=3)
        audited = run_map_phase(
            hosts, ClusterConfig(seed=4), "adapt", blocks_per_node=3, audit="strict"
        )
        assert audited.elapsed == plain.elapsed
        assert audited.data_locality == plain.data_locality

    def test_warmup_with_estimated_predictor(self):
        # Estimated mode + warmup: the predictor must learn during warmup
        # that interrupted nodes are flaky, before ingest happens.
        hosts = build_group_hosts(6, 0.5)
        config = ClusterConfig(seed=3, oracle_estimates=False)
        result = run_map_phase(
            hosts, config, "adapt", blocks_per_node=3, warmup_seconds=300.0
        )
        assert result.elapsed > 0
