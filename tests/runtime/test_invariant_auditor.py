"""Fault-injection tests for the cross-layer invariant auditor.

Each test corrupts exactly one layer of a wired cluster — removes a
physical replica, drops a ``BlockLost`` publication, tampers a counter,
flips a liveness bit — and asserts the auditor catches it under the
expected invariant name. A clean run must stay clean, strict mode must
raise, and attaching the auditor must not change a seeded trajectory.
"""

import json
import math

import pytest

from repro.availability.generator import build_group_hosts
from repro.core.placement import make_policy
from repro.mapreduce.job import JobConf, MapJob, TaskState
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.simulator.engine import EventHandle
from repro.simulator.events import BlockLost, NodePurged, TaskStateChange
from repro.simulator.invariants import (
    AUDIT_MODES,
    AuditReport,
    InvariantViolationError,
)

GAMMA = 10.0


def small_cluster(ratio=0.0, audit="report", **overrides):
    hosts = build_group_hosts(4, ratio)
    config = ClusterConfig(seed=5, audit=audit, **overrides)
    cluster = build_cluster(hosts, config)
    cluster.sim.run(until=0.0)
    return cluster


def ingest(cluster, num_blocks=8, replication=1):
    return cluster.client.copy_from_local(
        "in", num_blocks=num_blocks, replication=replication,
        policy=make_policy("existing"), gamma=GAMMA,
    )


def run_job(cluster, dfs_file):
    job = MapJob.uniform(JobConf(), dfs_file, GAMMA)
    cluster.jobtracker.submit(job)
    cluster.run_until_job_done(max_events=5_000_000)
    return job


def violation_names(violations):
    return {v.invariant for v in violations}


class TestCleanRuns:
    def test_report_mode_clean_run(self):
        cluster = small_cluster(ratio=0.5)
        run_job(cluster, ingest(cluster))
        cluster.stop()
        report = cluster.auditor.report
        assert report.ok
        assert report.final_audit_run
        assert report.audits_run >= 2  # periodic cadence plus teardown
        assert report.events_observed > 0

    def test_strict_mode_clean_run_does_not_raise(self):
        cluster = small_cluster(ratio=0.5, audit="strict")
        run_job(cluster, ingest(cluster))
        cluster.stop()
        assert cluster.auditor.report.ok

    def test_auditing_is_pure_observation(self):
        # Attaching the auditor must not perturb the seeded trajectory.
        makespans = []
        for audit in ("off", "strict"):
            cluster = small_cluster(ratio=0.75, audit=audit)
            job = run_job(cluster, ingest(cluster))
            makespans.append(job.makespan)
            cluster.stop()
        assert makespans[0] == makespans[1]

    def test_audit_off_means_no_auditor(self):
        cluster = small_cluster(audit="off")
        assert cluster.auditor is None
        cluster.stop()

    def test_report_export_json(self, tmp_path):
        cluster = small_cluster(ratio=0.5)
        run_job(cluster, ingest(cluster))
        cluster.stop()
        path = tmp_path / "audit.json"
        cluster.auditor.report.export_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert payload["final_audit_run"] is True
        assert payload["violations"] == []


class TestConfig:
    def test_invalid_audit_mode_rejected(self):
        with pytest.raises(ValueError, match="audit"):
            ClusterConfig(audit="bogus")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(audit_interval=0.0)

    def test_modes_tuple(self):
        assert AUDIT_MODES == ("off", "report", "strict")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "strict")
        cluster = small_cluster(audit="off")
        assert cluster.auditor is not None
        assert cluster.auditor.mode == "strict"
        cluster.stop()

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "paranoid")
        with pytest.raises(ValueError, match="REPRO_AUDIT"):
            small_cluster(audit="off")


class TestStorageFaults:
    def test_missing_physical_replica_caught(self):
        cluster = small_cluster()
        f = ingest(cluster, replication=2)
        block = f.blocks[0]
        holder = sorted(cluster.namenode.replica_holders(block.block_id))[0]
        cluster.namenode.datanode(holder).remove(block.block_id)
        names = violation_names(cluster.auditor.audit())
        assert "replica-map-physical" in names
        assert "orphan-replica" not in names

    def test_orphan_replica_caught(self):
        cluster = small_cluster()
        f = ingest(cluster, replication=1)
        block = f.blocks[0]
        holders = cluster.namenode.replica_holders(block.block_id)
        stranger = next(
            n for n in cluster.namenode.datanode_ids if n not in holders
        )
        cluster.namenode.datanode(stranger).store(
            cluster.namenode.block(block.block_id)
        )
        names = violation_names(cluster.auditor.audit())
        assert "orphan-replica" in names

    def test_spurious_block_lost_announcement_caught(self):
        cluster = small_cluster()
        f = ingest(cluster, replication=1)
        block = f.blocks[0]  # replicas alive and well
        cluster.bus.publish(BlockLost(time=cluster.sim.now, block_id=block.block_id))
        names = violation_names(cluster.auditor.audit())
        assert "lost-block-has-replicas" in names

    def test_dropped_block_lost_publication_caught(self):
        # The pipeline wipes a disk and records the loss, but the BlockLost
        # publication is swallowed: the belief layer never learns. The
        # auditor must notice both the unannounced loss and the counter gap.
        cluster = small_cluster()
        ingest(cluster, replication=1)
        real_publish = cluster.bus.publish

        def dropping_publish(event):
            if isinstance(event, BlockLost):
                return
            real_publish(event)

        cluster.bus.publish = dropping_publish
        victim = cluster.namenode.datanode_ids[0]
        cluster.injector.schedule_permanent_failure(victim, at_time=cluster.sim.now + 1.0)
        cluster.sim.run(until=cluster.sim.now + 2.0)
        assert cluster.durability.blocks_lost > 0  # the fault actually fired
        names = violation_names(cluster.auditor.audit())
        assert "unannounced-block-loss" in names
        assert "lost-block-count" in names


class TestLivenessFaults:
    def test_datanode_liveness_disagreement_caught(self):
        cluster = small_cluster()
        node = cluster.namenode.datanode_ids[0]
        cluster.namenode.datanode(node).set_up(False)  # injector says up
        names = violation_names(cluster.auditor.audit())
        assert "liveness-disagreement" in names

    def test_purged_node_believed_live_caught(self):
        cluster = small_cluster()
        node = cluster.namenode.datanode_ids[0]
        cluster.namenode.mark_dead(node)
        cluster.bus.publish(NodePurged(time=cluster.sim.now, node_id=node))
        assert not cluster.auditor.audit()  # consistent: purged and dead
        cluster.namenode.mark_alive(node)
        names = violation_names(cluster.auditor.audit())
        assert "purged-node-believed-live" in names


class TestAttemptFaults:
    def _cluster_with_live_attempt(self):
        cluster = small_cluster()
        f = ingest(cluster)
        job = MapJob.uniform(JobConf(), f, GAMMA)
        cluster.jobtracker.submit(job)
        for _ in range(10_000):
            tracker = next(
                (t for t in cluster.trackers.values() if t.live_attempts()), None
            )
            if tracker is not None:
                return cluster, tracker
            if not cluster.sim.step():
                break
        raise AssertionError("no live attempt materialised")

    def test_attempt_on_down_node_caught(self):
        cluster, tracker = self._cluster_with_live_attempt()
        tracker._is_up = False  # fault: down tracker still holds attempts
        names = violation_names(cluster.auditor.audit())
        assert "attempt-on-down-node" in names

    def test_live_attempt_task_state_caught(self):
        cluster, tracker = self._cluster_with_live_attempt()
        tracker.live_attempts()[0].task.state = TaskState.PENDING
        names = violation_names(cluster.auditor.audit())
        assert "live-attempt-task-state" in names

    def test_slot_overcommit_caught(self):
        cluster, tracker = self._cluster_with_live_attempt()
        attempt = tracker.live_attempts()[0]
        tracker._live["phantom"] = attempt  # same attempt twice: 2 > 1 slot
        names = violation_names(cluster.auditor.audit())
        assert "slot-overcommit" in names


class TestEventStreamFaults:
    def test_event_time_behind_clock_caught(self):
        cluster = small_cluster(ratio=0.5)
        run_job(cluster, ingest(cluster))
        assert cluster.sim.now > 0.0
        cluster.bus.publish(TaskStateChange(time=0.0, task_id="t", state="pending"))
        names = violation_names(cluster.auditor.audit())
        assert "event-time-behind-clock" in names
        assert "event-time-monotonic" in names

    def test_event_heap_time_caught(self):
        cluster = small_cluster(ratio=0.5)
        run_job(cluster, ingest(cluster))
        assert cluster.sim.now > 1.0
        stale = EventHandle(0.0, lambda: None, "stale")
        cluster.sim.queue.push((0.0, -1, stale))
        names = violation_names(cluster.auditor.audit())
        assert "event-heap-time" in names


class TestCounterFaults:
    def test_tampered_interruption_counter_caught(self):
        cluster = small_cluster()
        cluster.metrics.record_interruption()  # no NodeDown was published
        names = violation_names(cluster.auditor.audit())
        assert "interruption-count" in names

    def test_tampered_node_return_counter_caught(self):
        cluster = small_cluster()
        cluster.metrics.record_node_return()
        names = violation_names(cluster.auditor.audit())
        assert "node-return-count" in names

    def test_tampered_permanent_failure_counter_caught(self):
        cluster = small_cluster()
        cluster.durability.record_permanent_failure(replicas_destroyed=0)
        names = violation_names(cluster.auditor.audit())
        assert "permanent-failure-count" in names

    def test_tampered_failed_attempt_counter_caught(self):
        cluster = small_cluster(ratio=0.5)
        run_job(cluster, ingest(cluster))
        cluster.metrics.failed_attempts += 1
        names = violation_names(cluster.auditor.audit())
        assert "failed-attempt-count" in names

    def test_tampered_speculative_counter_caught(self):
        cluster = small_cluster(ratio=0.5)
        run_job(cluster, ingest(cluster))
        cluster.metrics.speculative_attempts += 1
        names = violation_names(cluster.auditor.audit())
        assert "speculative-attempt-count" in names


class TestConservationFaults:
    def test_inflated_idle_time_caught(self):
        cluster = small_cluster(ratio=0.5)
        run_job(cluster, ingest(cluster))
        assert not cluster.auditor.audit()  # exact before the tamper
        cluster.metrics.add_idle(123.0)
        names = violation_names(cluster.auditor.audit())
        assert "conservation-residual" in names

    def test_residual_matches_breakdown(self):
        # The auditor's conservation identity is the same quantity
        # OverheadBreakdown.conservation_residual reports, and on a clean
        # run both sit inside the auditor's float tolerance.
        cluster = small_cluster(ratio=0.5)
        job = run_job(cluster, ingest(cluster))
        breakdown = cluster.metrics.breakdown(job.makespan, slots=cluster.total_slots)
        auditor = cluster.auditor
        tolerance = (
            auditor._residual_rel_tol * max(breakdown.slot_time, 1.0)
            + auditor._residual_abs_tol
        )
        assert abs(breakdown.conservation_residual()) <= tolerance
        assert not auditor.audit()
        cluster.stop()


class TestStrictMode:
    def test_strict_audit_raises_with_violation_details(self):
        cluster = small_cluster(audit="strict")
        cluster.metrics.record_interruption()
        with pytest.raises(InvariantViolationError, match="interruption-count"):
            cluster.auditor.audit()
        # The raise still recorded the sweep into the report.
        assert not cluster.auditor.report.ok

    def test_report_mode_accumulates_instead(self):
        cluster = small_cluster(audit="report")
        cluster.metrics.record_interruption()
        found = cluster.auditor.audit()
        assert found  # returned, not raised
        report = cluster.auditor.report
        assert not report.ok
        assert report.counts_by_invariant()["interruption-count"] >= 1

    def test_report_roundtrip(self):
        report = AuditReport(mode="report")
        assert report.ok
        payload = report.to_jsonable()
        assert payload["mode"] == "report"
        assert payload["violation_counts"] == {}


class TestMathAbandonment:
    def test_total_data_loss_reports_nan_locality_and_breakdown(self):
        # Every replica of every block destroyed before any completion:
        # all tasks are abandoned, locality is NaN, but the breakdown row
        # still emits (satellite regression: this used to ValueError).
        cluster = small_cluster(audit="off")
        f = ingest(cluster, replication=1)
        job = MapJob.uniform(JobConf(), f, GAMMA)
        for node in cluster.namenode.datanode_ids:
            cluster.injector.schedule_permanent_failure(node, at_time=0.5)
        cluster.jobtracker.submit(job)
        cluster.run_until_job_done(max_events=5_000_000)
        assert all(t.state is TaskState.ABANDONED for t in job.tasks)
        assert math.isnan(cluster.metrics.data_locality)
        breakdown = cluster.metrics.breakdown(job.makespan, slots=cluster.total_slots)
        assert math.isnan(breakdown.data_locality)
        assert breakdown.slot_time >= 0.0
        cluster.stop()
