"""Tests for the Service protocol and ServiceRegistry lifecycle kernel."""

import pytest

from repro.runtime.services import Service, ServiceRegistry


class FakeService:
    """Minimal structural Service (no inheritance, by design)."""

    def __init__(self, name, log):
        self.name = name
        self._log = log

    def start(self):
        self._log.append(("start", self.name))

    def stop(self):
        self._log.append(("stop", self.name))

    def describe(self):
        return {"service": self.name}


class TestProtocol:
    def test_structural_conformance(self):
        assert isinstance(FakeService("x", []), Service)

    def test_missing_member_fails_check(self):
        class NotAService:  # simlint: ignore[C003] — half a lifecycle on purpose
            name = "broken"

            def start(self):
                pass

        assert not isinstance(NotAService(), Service)

    def test_real_subsystems_conform(self):
        from repro.hdfs.detection import OracleDetector
        from repro.hdfs.namenode import NameNode
        from repro.simulator.engine import Simulator
        from repro.simulator.network import Network

        sim = Simulator()
        assert isinstance(Network(sim, uplink_bps=1e6), Service)
        assert isinstance(OracleDetector(NameNode()), Service)


class TestRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        service = FakeService("a", [])
        registry.register(service)
        assert registry.get("a") is service
        assert "a" in registry
        assert len(registry) == 1
        assert registry.names == ["a"]

    def test_rejects_non_service(self):
        registry = ServiceRegistry()
        with pytest.raises(TypeError, match="Service protocol"):
            registry.register(object())

    def test_rejects_duplicate_name(self):
        registry = ServiceRegistry()
        registry.register(FakeService("a", []))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(FakeService("a", []))

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no service"):
            ServiceRegistry().get("ghost")

    def test_start_order_is_registration_stop_order_is_reverse(self):
        log = []
        registry = ServiceRegistry()
        for name in ("producer", "middle", "consumer"):
            registry.register(FakeService(name, log))
        registry.start_all()
        registry.stop_all()
        assert log == [
            ("start", "producer"),
            ("start", "middle"),
            ("start", "consumer"),
            ("stop", "consumer"),
            ("stop", "middle"),
            ("stop", "producer"),
        ]

    def test_describe_all_in_registration_order(self):
        registry = ServiceRegistry()
        registry.register(FakeService("a", []))
        registry.register(FakeService("b", []))
        assert registry.describe_all() == [{"service": "a"}, {"service": "b"}]

    def test_iteration_yields_services(self):
        registry = ServiceRegistry()
        a, b = FakeService("a", []), FakeService("b", [])
        registry.register(a)
        registry.register(b)
        assert list(registry) == [a, b]


class LazyNameService:
    """A service whose name is expensive: bulk registration must not read it."""

    def __init__(self, node_id, log):
        self._node_id = node_id
        self._log = log
        self.reads = 0

    @property
    def name(self):
        self.reads += 1
        return f"lazy:{self._node_id}"

    def start(self):
        self._log.append(("start", self._node_id))

    def stop(self):
        self._log.append(("stop", self._node_id))

    def describe(self):
        return {"service": self._node_id}


class TestRegisterBulk:
    def test_bulk_reads_at_most_one_name(self):
        # The structural protocol check may probe `name` once (for the
        # first instance of the class — the type cache absorbs the rest);
        # bulk registration itself must not touch any name.
        registry = ServiceRegistry()
        log = []
        services = [LazyNameService(i, log) for i in range(4)]
        assert registry.register_bulk(services) == 4
        assert sum(s.reads for s in services) <= 1
        assert all(s.reads == 0 for s in services[1:])
        assert len(registry) == 4

    def test_order_and_lifecycle_preserved(self):
        registry = ServiceRegistry()
        log = []
        registry.register(FakeService("a", log))
        registry.register_bulk([FakeService("b", log), FakeService("c", log)])
        registry.register(FakeService("d", log))
        registry.start_all()
        registry.stop_all()
        assert log == [
            ("start", "a"),
            ("start", "b"),
            ("start", "c"),
            ("start", "d"),
            ("stop", "d"),
            ("stop", "c"),
            ("stop", "b"),
            ("stop", "a"),
        ]

    def test_name_lookup_after_bulk(self):
        registry = ServiceRegistry()
        log = []
        registry.register_bulk([FakeService("x", log), FakeService("y", log)])
        assert registry.get("y").name == "y"
        assert "x" in registry
        assert registry.names == ["x", "y"]

    def test_duplicate_detected_at_first_lookup(self):
        registry = ServiceRegistry()
        log = []
        registry.register_bulk([FakeService("dup", log), FakeService("dup", log)])
        with pytest.raises(ValueError, match="already registered"):
            registry.get("dup")

    def test_bulk_rejects_non_services(self):
        registry = ServiceRegistry()
        with pytest.raises(TypeError):
            registry.register_bulk([object()])

    def test_eager_register_still_detects_duplicates(self):
        registry = ServiceRegistry()
        log = []
        registry.register(FakeService("same", log))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(FakeService("same", log))
