"""Tests for the Service protocol and ServiceRegistry lifecycle kernel."""

import pytest

from repro.runtime.services import Service, ServiceRegistry


class FakeService:
    """Minimal structural Service (no inheritance, by design)."""

    def __init__(self, name, log):
        self.name = name
        self._log = log

    def start(self):
        self._log.append(("start", self.name))

    def stop(self):
        self._log.append(("stop", self.name))

    def describe(self):
        return {"service": self.name}


class TestProtocol:
    def test_structural_conformance(self):
        assert isinstance(FakeService("x", []), Service)

    def test_missing_member_fails_check(self):
        class NotAService:  # simlint: ignore[C003] — half a lifecycle on purpose
            name = "broken"

            def start(self):
                pass

        assert not isinstance(NotAService(), Service)

    def test_real_subsystems_conform(self):
        from repro.hdfs.detection import OracleDetector
        from repro.hdfs.namenode import NameNode
        from repro.simulator.engine import Simulator
        from repro.simulator.network import Network

        sim = Simulator()
        assert isinstance(Network(sim, uplink_bps=1e6), Service)
        assert isinstance(OracleDetector(NameNode()), Service)


class TestRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        service = FakeService("a", [])
        registry.register(service)
        assert registry.get("a") is service
        assert "a" in registry
        assert len(registry) == 1
        assert registry.names == ["a"]

    def test_rejects_non_service(self):
        registry = ServiceRegistry()
        with pytest.raises(TypeError, match="Service protocol"):
            registry.register(object())

    def test_rejects_duplicate_name(self):
        registry = ServiceRegistry()
        registry.register(FakeService("a", []))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(FakeService("a", []))

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no service"):
            ServiceRegistry().get("ghost")

    def test_start_order_is_registration_stop_order_is_reverse(self):
        log = []
        registry = ServiceRegistry()
        for name in ("producer", "middle", "consumer"):
            registry.register(FakeService(name, log))
        registry.start_all()
        registry.stop_all()
        assert log == [
            ("start", "producer"),
            ("start", "middle"),
            ("start", "consumer"),
            ("stop", "consumer"),
            ("stop", "middle"),
            ("stop", "producer"),
        ]

    def test_describe_all_in_registration_order(self):
        registry = ServiceRegistry()
        registry.register(FakeService("a", []))
        registry.register(FakeService("b", []))
        assert registry.describe_all() == [{"service": "a"}, {"service": "b"}]

    def test_iteration_yields_services(self):
        registry = ServiceRegistry()
        a, b = FakeService("a", []), FakeService("b", [])
        registry.register(a)
        registry.register(b)
        assert list(registry) == [a, b]
