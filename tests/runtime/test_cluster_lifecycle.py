"""Lifecycle and wiring tests for the bus-driven cluster.

Covers the combinations the refactor made first-class: oracle detection
feeding the replication monitor through belief events, `Cluster.stop()`
draining the heap via the service registry, and the registry holding
every subsystem.
"""

import pytest

from repro.availability.generator import build_group_hosts
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.runtime.services import Service
from repro.simulator.events import NodeDeclaredDead, NodeDown, Phase


def _monitor_config(**overrides):
    base = dict(
        seed=5,
        replication_monitor=True,
        permanent_failure_rate=0.5,
        permanent_failure_horizon=60.0,
    )
    base.update(overrides)
    return ClusterConfig(**base)


class TestOracleWithMonitor:
    def test_oracle_detection_feeds_monitor(self):
        hosts = build_group_hosts(8, 1.0)
        cluster = build_cluster(hosts, _monitor_config(detection="oracle"))
        assert cluster.detector is not None
        assert cluster.heartbeats is None
        assert cluster.monitor is not None
        declared = []
        cluster.bus.subscribe(
            NodeDeclaredDead, lambda e: declared.append(e.node_id), Phase.SCHEDULING
        )
        cluster.sim.run(until=120.0)
        # The oracle declares every physical interruption instantly, so the
        # belief stream is non-empty and the monitor reacted to each event.
        assert declared
        info = cluster.detector.describe()
        assert info["deaths_declared"] == len(declared)
        # Permanent failures were purged through the belief path: the wiped
        # nodes no longer appear in the monitor's tracked queue state and
        # the durability metrics saw the wipes.
        assert cluster.durability.permanent_failures > 0

    def test_oracle_and_heartbeat_reach_same_monitor_api(self):
        # Both detectors publish the same belief events; the monitor wiring
        # is identical in the two modes (interchangeability contract).
        hosts = build_group_hosts(4, 1.0)
        oracle = build_cluster(hosts, _monitor_config(detection="oracle"))
        heartbeat = build_cluster(hosts, _monitor_config(detection="heartbeat"))
        for cluster in (oracle, heartbeat):
            assert cluster.bus.handler_count(NodeDeclaredDead) >= 2  # monitor + jobtracker
            assert cluster.monitor is not None


class TestStopDrainsHeap:
    def test_stop_with_monitor_lets_heap_drain(self):
        hosts = build_group_hosts(8, 1.0)
        cluster = build_cluster(hosts, _monitor_config())
        cluster.sim.run(until=90.0)
        cluster.stop()
        # Nothing re-arms after a full stop: the injector schedules no new
        # episodes, beats and watchdogs are disarmed, the monitor retries
        # nothing, so the heap empties in bounded work.
        cluster.sim.run()
        assert cluster.sim.pending_events == 0

    def test_stop_with_oracle_lets_heap_drain(self):
        hosts = build_group_hosts(6, 1.0)
        cluster = build_cluster(hosts, _monitor_config(detection="oracle"))
        cluster.sim.run(until=50.0)
        cluster.stop()
        cluster.sim.run()
        assert cluster.sim.pending_events == 0

    def test_stop_is_idempotent(self):
        hosts = build_group_hosts(4, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=2))
        cluster.stop()
        cluster.stop()  # second stop must not raise


class TestServiceRegistryWiring:
    def test_every_subsystem_registered(self):
        hosts = build_group_hosts(4, 0.5)
        cluster = build_cluster(hosts, _monitor_config(trace_events=True))
        names = cluster.services.names
        assert "network" in names
        assert "failure-injector" in names
        assert "durability-pipeline" in names
        assert "heartbeat-detector" in names
        assert "replication-monitor" in names
        assert "jobtracker" in names
        assert "trace-recorder" in names
        for host in hosts:
            assert f"tasktracker:{host.host_id}" in names
        # Consumers registered after producers: stop_all (reverse order)
        # then tears down schedulers before the network they publish into.
        assert names.index("jobtracker") > names.index("network")

    def test_registered_objects_satisfy_protocol(self):
        hosts = build_group_hosts(3, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1))
        for service in cluster.services:
            assert isinstance(service, Service)

    def test_describe_all_returns_one_row_per_service(self):
        hosts = build_group_hosts(3, 0.5)
        cluster = build_cluster(hosts, ClusterConfig(seed=1))
        rows = cluster.services.describe_all()
        assert len(rows) == len(cluster.services)
        assert all(isinstance(row, dict) for row in rows)

    def test_no_inline_lambdas_in_wiring(self):
        # The refactor's contract: bus wiring is named-method subscriptions
        # only, so dispatch order is readable from the phase table.
        import inspect

        from repro.runtime import cluster as cluster_module

        source = inspect.getsource(cluster_module.build_cluster)
        assert "lambda" not in source


class TestConfigValidation:
    def test_downlink_rejected_when_nonpositive(self):
        with pytest.raises(ValueError, match="downlink_mbps"):
            ClusterConfig(downlink_mbps=0.0)
        with pytest.raises(ValueError, match="downlink_mbps"):
            ClusterConfig(downlink_mbps=-4.0)
        assert ClusterConfig(downlink_mbps=None).downlink_mbps is None  # symmetric OK

    def test_heartbeat_interval_rejected_when_nonpositive(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ClusterConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ClusterConfig(heartbeat_interval=-1.0)

    def test_sweep_interval_rejected_when_nonpositive(self):
        with pytest.raises(ValueError, match="sweep_interval"):
            ClusterConfig(sweep_interval=0.0)

    def test_fetch_backoff_rejected_when_nonpositive(self):
        with pytest.raises(ValueError, match="fetch_backoff"):
            ClusterConfig(fetch_backoff=0.0)
        with pytest.raises(ValueError, match="fetch_backoff"):
            ClusterConfig(fetch_backoff=-0.5)

    def test_valid_config_accepted(self):
        config = ClusterConfig(
            downlink_mbps=15.0, heartbeat_interval=1.0, sweep_interval=2.0, fetch_backoff=0.25
        )
        assert config.heartbeat_interval == 1.0


class TestBusObservability:
    def test_node_down_events_flow_through_bus(self):
        hosts = build_group_hosts(6, 1.0)
        cluster = build_cluster(hosts, ClusterConfig(seed=4, detection="oracle"))
        downs = []
        cluster.bus.subscribe(NodeDown, lambda e: downs.append(e.node_id), Phase.SCHEDULING)
        cluster.sim.run(until=60.0)
        assert len(downs) == cluster.metrics.interruptions
        assert cluster.bus.published_count >= len(downs)
