"""Tests for unit conversions."""

import pytest

from repro.util.units import (
    MB,
    Mb,
    format_bytes,
    format_rate,
    mbit_per_s,
    megabytes,
    seconds_to_transfer,
)


class TestConversions:
    def test_megabytes(self):
        assert megabytes(64) == 64 * 1024 * 1024

    def test_mbit_per_s(self):
        # 8 Mb/s = 1e6 bytes/s.
        assert mbit_per_s(8) == pytest.approx(1_000_000.0)

    def test_mbit_rejects_non_positive(self):
        with pytest.raises(ValueError):
            mbit_per_s(0)

    def test_transfer_time_64mb_at_8mbps(self):
        # The paper's canonical example: a 64MB block at 8Mb/s takes ~67s.
        t = seconds_to_transfer(megabytes(64), mbit_per_s(8))
        assert t == pytest.approx(67.1, abs=0.1)

    def test_transfer_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            seconds_to_transfer(100, 0)

    def test_transfer_rejects_negative_size(self):
        with pytest.raises(ValueError):
            seconds_to_transfer(-1, 10)

    def test_zero_size_is_instant(self):
        assert seconds_to_transfer(0, 100) == 0.0


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(64 * MB) == "64.0MB"
        assert format_bytes(512) == "512.0B"
        assert format_bytes(3 * 1024) == "3.0KB"

    def test_format_rate(self):
        assert format_rate(mbit_per_s(8)) == "8.0Mb/s"

    def test_mb_constant_consistency(self):
        assert Mb == pytest.approx(125_000.0)
