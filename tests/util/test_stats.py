"""Tests for streaming and summary statistics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    mean,
    percentile,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_single_value(self):
        acc = RunningStats()
        acc.add(5.0)
        assert acc.mean == 5.0
        assert acc.std == 0.0
        assert acc.count == 1

    def test_known_values(self):
        acc = RunningStats()
        acc.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert acc.mean == pytest.approx(5.0)
        # Sample std with n-1 denominator.
        assert acc.variance == pytest.approx(32.0 / 7.0)

    def test_min_max(self):
        acc = RunningStats()
        acc.extend([3.0, -1.0, 7.0])
        assert acc.minimum == -1.0
        assert acc.maximum == 7.0

    def test_empty_raises(self):
        acc = RunningStats()
        with pytest.raises(ValueError):
            _ = acc.mean

    def test_merge_matches_bulk(self):
        left, right, bulk = RunningStats(), RunningStats(), RunningStats()
        data_l = [1.0, 2.0, 3.0]
        data_r = [10.0, 20.0]
        left.extend(data_l)
        right.extend(data_r)
        bulk.extend(data_l + data_r)
        merged = left.merge(right)
        assert merged.count == bulk.count
        assert merged.mean == pytest.approx(bulk.mean)
        assert merged.variance == pytest.approx(bulk.variance)
        assert merged.minimum == bulk.minimum
        assert merged.maximum == bulk.maximum

    def test_merge_with_empty(self):
        acc = RunningStats()
        acc.extend([1.0, 2.0])
        merged = acc.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)
        merged2 = RunningStats().merge(acc)
        assert merged2.mean == pytest.approx(1.5)

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    @settings(max_examples=100)
    def test_matches_reference(self, values):
        acc = RunningStats()
        acc.extend(values)
        ref_mean = sum(values) / len(values)
        ref_var = sum((v - ref_mean) ** 2 for v in values) / (len(values) - 1)
        assert acc.mean == pytest.approx(ref_mean, abs=1e-6)
        assert acc.variance == pytest.approx(ref_var, rel=1e-6, abs=1e-6)

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.lists(finite_floats, min_size=1, max_size=30),
    )
    @settings(max_examples=50)
    def test_merge_property(self, lhs, rhs):
        a, b, bulk = RunningStats(), RunningStats(), RunningStats()
        a.extend(lhs)
        b.extend(rhs)
        bulk.extend(lhs + rhs)
        merged = a.merge(b)
        assert merged.mean == pytest.approx(bulk.mean, abs=1e-6)
        assert merged.variance == pytest.approx(bulk.variance, rel=1e-5, abs=1e-5)


class TestSummaries:
    def test_summarize_cov(self):
        s = summarize([10.0, 10.0, 10.0])
        assert s.cov == 0.0
        assert s.count == 3

    def test_cov_known(self):
        # mean 2, std 1 -> CoV 0.5 for [1, 2, 3] sample std = 1.
        assert coefficient_of_variation([1.0, 2.0, 3.0]) == pytest.approx(0.5)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row(self):
        row = summarize([1.0, 2.0, 3.0]).as_row()
        assert len(row) == 3
        assert row[0] == "2.0"

    def test_mean_helper(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_element(self):
        assert percentile([7.0], 99) == 7.0

    def test_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_within_range(self, values):
        p = percentile(values, 37.5)
        assert min(values) <= p <= max(values)
