"""Tests for deterministic random-stream management."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RandomSource, derive_seed, resolve_seed, spawn_sources


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_differs_by_key(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_key_path_not_flattened(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    @settings(max_examples=50)
    def test_always_in_range(self, root, key):
        assert 0 <= derive_seed(root, key) < 2**64


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomSource(7)
        b = RandomSource(8)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_substreams_are_independent_of_consumption(self):
        # Consuming the parent must not perturb a keyed substream.
        a = RandomSource(7)
        sub_before = a.substream("child").random()
        b = RandomSource(7)
        for _ in range(100):
            b.random()
        sub_after = b.substream("child").random()
        assert sub_before == sub_after

    def test_substream_keys_distinguish(self):
        root = RandomSource(7)
        assert root.substream("x").random() != root.substream("y").random()

    def test_nested_substreams(self):
        root = RandomSource(7)
        direct = root.substream("a", "b").random()
        nested = root.substream("a").substream("b").random()
        assert direct == nested

    def test_randrange_bounds(self):
        src = RandomSource(1)
        values = {src.randrange(5) for _ in range(200)}
        assert values == {0, 1, 2, 3, 4}

    def test_randint_bounds(self):
        src = RandomSource(1)
        values = {src.randint(2, 4) for _ in range(200)}
        assert values == {2, 3, 4}

    def test_expovariate_positive(self):
        src = RandomSource(1)
        assert all(src.expovariate(0.5) > 0 for _ in range(100))

    def test_weighted_choice_respects_zero_weight(self):
        src = RandomSource(1)
        for _ in range(100):
            assert src.weighted_choice(["a", "b"], [1.0, 0.0]) == "a"

    def test_weighted_choice_rejects_bad_inputs(self):
        src = RandomSource(1)
        with pytest.raises(ValueError):
            src.weighted_choice(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            src.weighted_choice(["a", "b"], [0.0, 0.0])

    def test_weighted_choice_distribution(self):
        src = RandomSource(42)
        counts = {"a": 0, "b": 0}
        for _ in range(3000):
            counts[src.weighted_choice(["a", "b"], [3.0, 1.0])] += 1
        assert 0.65 < counts["a"] / 3000 < 0.85

    def test_shuffle_is_permutation(self):
        src = RandomSource(9)
        items = list(range(20))
        shuffled = list(items)
        src.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_sample_distinct(self):
        src = RandomSource(9)
        picked = src.sample(list(range(10)), 5)
        assert len(set(picked)) == 5

    def test_repr_mentions_seed(self):
        assert "123" in repr(RandomSource(123))


class TestHelpers:
    def test_spawn_sources(self):
        root = RandomSource(3)
        a, b = spawn_sources(root, ["x", "y"])
        assert a.random() == RandomSource(3).substream("x").random()
        assert b.random() == RandomSource(3).substream("y").random()

    def test_resolve_seed(self):
        assert resolve_seed(None, fallback=4) == 4
        assert resolve_seed(17) == 17
