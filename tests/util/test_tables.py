"""Tests for ASCII table rendering."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert len(lines) == 6  # rule, header, rule, 2 rows, rule
        assert "| a" in lines[1]

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        out = format_table(["col"], [["short"], ["a-much-longer-value"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line padded to the same width

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159]])
        assert "3.142" in out

    def test_large_float_formatting(self):
        out = format_table(["v"], [[123456.789]])
        assert "123456.8" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "| a |" in out
