"""Tests for argument validation helpers."""

import pytest

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestValidation:
    def test_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_positive_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.001)

    def test_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)
        with pytest.raises(ValueError):
            check_probability("p", -0.01)

    def test_check_type(self):
        assert check_type("s", "hello", str) == "hello"
        with pytest.raises(TypeError, match="s must be str"):
            check_type("s", 5, str)

    def test_nan_rejected_by_positive(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
