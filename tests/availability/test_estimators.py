"""Tests for the online interruption-statistics estimators."""

import pytest

from repro.availability.estimators import (
    AvailabilityEstimate,
    InterruptionStatsEstimator,
    oracle_estimate,
)


class TestAvailabilityEstimate:
    def test_mtbi_inverse_of_rate(self):
        est = AvailabilityEstimate(arrival_rate=0.1, recovery_mean=4.0)
        assert est.mtbi == pytest.approx(10.0)

    def test_dedicated(self):
        est = AvailabilityEstimate(arrival_rate=0.0, recovery_mean=0.0)
        assert est.is_dedicated
        assert est.mtbi == float("inf")
        assert est.steady_state_availability == 1.0
        assert est.naive_availability == 1.0

    def test_steady_state_availability(self):
        est = AvailabilityEstimate(arrival_rate=0.1, recovery_mean=10.0)
        # MTBI 10, recovery 10 -> up half the time.
        assert est.steady_state_availability == pytest.approx(0.5)

    def test_naive_availability_matches_paper_formula(self):
        # (MTBI - mu) / MTBI, Section V.C.
        est = AvailabilityEstimate(arrival_rate=0.05, recovery_mean=4.0)
        assert est.naive_availability == pytest.approx((20.0 - 4.0) / 20.0)

    def test_naive_availability_floored(self):
        # mu > MTBI would make the paper's formula negative; we floor it.
        est = AvailabilityEstimate(arrival_rate=1.0, recovery_mean=5.0)
        assert est.naive_availability > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityEstimate(arrival_rate=-1.0, recovery_mean=0.0)
        with pytest.raises(ValueError):
            AvailabilityEstimate(arrival_rate=0.0, recovery_mean=0.0, observations=-1)


class TestEstimator:
    def test_prior_only(self):
        est = InterruptionStatsEstimator(prior_mtbi=100.0, prior_recovery=5.0)
        estimate = est.estimate()
        assert estimate.mtbi == pytest.approx(100.0)
        assert estimate.recovery_mean == pytest.approx(5.0)
        assert estimate.observations == 0

    def test_converges_to_observations(self):
        # The prior acts as prior_weight pseudo-episodes spread over
        # prior_weight * prior_mtbi pseudo-uptime; a weak prior lets the
        # data dominate quickly.
        est = InterruptionStatsEstimator(prior_mtbi=1e6, prior_recovery=0.0, prior_weight=1e-4)
        # 100 episodes over 1000s of uptime: MTBI ~ 10s, recovery ~ 2s.
        for _ in range(100):
            est.record_uptime(10.0)
            est.record_downtime(2.0)
        estimate = est.estimate()
        assert estimate.mtbi == pytest.approx(10.0, rel=0.2)
        assert estimate.recovery_mean == pytest.approx(2.0, rel=0.05)
        assert estimate.observations == 100

    def test_prior_dominates_early(self):
        est = InterruptionStatsEstimator(prior_mtbi=50.0, prior_recovery=3.0, prior_weight=10.0)
        est.record_uptime(1.0)
        est.record_downtime(100.0)
        # One wild observation against 10 pseudo-observations barely moves it.
        assert est.estimate().recovery_mean < 15.0

    def test_pure_empirical_mode(self):
        est = InterruptionStatsEstimator(prior_mtbi=123.0, prior_weight=0.0)
        est.record_uptime(30.0)
        est.record_downtime(6.0)
        estimate = est.estimate()
        assert estimate.mtbi == pytest.approx(30.0)
        assert estimate.recovery_mean == pytest.approx(6.0)

    def test_reset(self):
        est = InterruptionStatsEstimator(prior_mtbi=100.0)
        est.record_uptime(1.0)
        est.record_downtime(1.0)
        est.reset()
        assert est.observed_episodes == 0
        assert est.estimate().mtbi == pytest.approx(100.0, rel=0.05)

    def test_rejects_negative(self):
        est = InterruptionStatsEstimator()
        with pytest.raises(ValueError):
            est.record_uptime(-1.0)
        with pytest.raises(ValueError):
            est.record_downtime(-1.0)


class TestOracle:
    def test_oracle_estimate(self):
        est = oracle_estimate(arrival_rate=0.1, recovery_mean=4.0)
        assert est.mtbi == pytest.approx(10.0)
        assert est.observations > 0
