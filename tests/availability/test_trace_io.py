"""Tests for trace file I/O (FTA-style event logs)."""

import io

import pytest

from repro.availability.trace_io import parse_traces, read_traces, write_traces
from repro.availability.traces import AvailabilityTrace


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        traces = [
            AvailabilityTrace("h0", 100.0, [(10.0, 20.0), (50.0, 55.0)]),
            AvailabilityTrace("h1", 100.0, [(3.5, 4.25)]),
            AvailabilityTrace("h2", 100.0, []),
        ]
        path = tmp_path / "traces.tsv"
        events = write_traces(traces, path)
        assert events == 3
        loaded = read_traces(path, host_ids=["h0", "h1", "h2"])
        assert [t.host_id for t in loaded] == ["h0", "h1", "h2"]
        for original, restored in zip(traces, loaded, strict=True):
            assert restored.horizon == original.horizon
            assert restored.down_windows == original.down_windows

    def test_write_requires_consistent_horizon(self, tmp_path):
        traces = [
            AvailabilityTrace("a", 100.0, ()),
            AvailabilityTrace("b", 50.0, ()),
        ]
        with pytest.raises(ValueError, match="horizon"):
            write_traces(traces, tmp_path / "x.tsv")

    def test_write_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_traces([], tmp_path / "x.tsv")


class TestParsing:
    def test_basic(self):
        text = "# host_id\tstart\tend\nh0\t5.0\t8.0\nh0\t20.0\t21.0\n"
        traces = parse_traces(io.StringIO(text), horizon=100.0)
        assert len(traces) == 1
        assert traces[0].down_windows == [(5.0, 8.0), (20.0, 21.0)]

    def test_unordered_and_overlapping_events_merged(self):
        # Trace archives often hold overlapping intervals from multiple
        # monitors; they must merge into clean windows.
        text = "h\t30.0\t40.0\nh\t5.0\t10.0\nh\t35.0\t50.0\nh\t10.0\t12.0\n"
        traces = parse_traces(io.StringIO(text), horizon=100.0)
        assert traces[0].down_windows == [(5.0, 12.0), (30.0, 50.0)]

    def test_horizon_from_header(self):
        text = "# horizon\t500.0\nh\t5.0\t8.0\n"
        traces = parse_traces(io.StringIO(text))
        assert traces[0].horizon == 500.0

    def test_horizon_fallback_covers_events(self):
        text = "h\t5.0\t80.0\n"
        traces = parse_traces(io.StringIO(text))
        assert traces[0].horizon == 80.0

    def test_explicit_horizon_clips(self):
        text = "h\t5.0\t80.0\n"
        traces = parse_traces(io.StringIO(text), horizon=50.0)
        assert traces[0].down_windows == [(5.0, 50.0)]

    def test_host_ids_adds_silent_hosts(self):
        text = "# horizon\t100.0\nh0\t5.0\t8.0\n"
        traces = parse_traces(io.StringIO(text), host_ids=["h0", "quiet"])
        assert [t.host_id for t in traces] == ["h0", "quiet"]
        assert traces[1].interruption_count() == 0

    def test_bad_lines_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_traces(io.StringIO("h\t1.0\n"), horizon=10.0)
        with pytest.raises(ValueError, match="inverted"):
            parse_traces(io.StringIO("h\t5.0\t5.0\n"), horizon=10.0)
        with pytest.raises(ValueError, match="negative"):
            parse_traces(io.StringIO("h\t-1.0\t5.0\n"), horizon=10.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="nothing to build"):
            parse_traces(io.StringIO(""))


class TestSimulatorIntegration:
    def test_loaded_traces_drive_a_cluster(self, tmp_path):
        from repro.availability.generator import HostAvailability
        from repro.core.placement import RandomPlacement
        from repro.mapreduce.job import JobConf, MapJob
        from repro.runtime.cluster import ClusterConfig, build_cluster

        path = tmp_path / "t.tsv"
        write_traces(
            [
                AvailabilityTrace("n0", 1e6, [(15.0, 30.0)]),
                AvailabilityTrace("n1", 1e6, []),
            ],
            path,
        )
        traces = read_traces(path, host_ids=["n0", "n1"])
        hosts = [HostAvailability(host_id=t.host_id) for t in traces]
        cluster = build_cluster(hosts, ClusterConfig(seed=1), traces=traces)
        f = cluster.client.copy_from_local(
            "in", num_blocks=4, policy=RandomPlacement(), gamma=10.0
        )
        job = MapJob.uniform(JobConf(), f, 10.0)
        cluster.jobtracker.submit(job)
        cluster.run_until_job_done()
        assert job.is_complete
