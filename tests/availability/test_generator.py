"""Tests for Table 2 groups and host population construction."""

import pytest

from repro.availability.distributions import Exponential
from repro.availability.generator import (
    GroupSpec,
    HostAvailability,
    build_group_hosts,
    table2_groups,
)
from repro.util.rng import RandomSource


class TestTable2:
    def test_exact_paper_values(self):
        groups = table2_groups()
        assert [(g.mtbi, g.service_mean) for g in groups] == [
            (10.0, 4.0),
            (10.0, 8.0),
            (20.0, 4.0),
            (20.0, 8.0),
        ]

    def test_all_groups_stable(self):
        # Even the harshest group (MTBI 10, service 8) must have rho < 1.
        for group in table2_groups():
            assert group.utilization < 1.0

    def test_group_validation(self):
        with pytest.raises(ValueError):
            GroupSpec("bad", mtbi=0.0, service_mean=1.0)


class TestHostAvailability:
    def test_dedicated(self):
        host = HostAvailability(host_id="d0")
        assert host.is_dedicated
        assert host.arrival_rate == 0.0
        assert host.mtbi == float("inf")
        assert host.service_mean == 0.0
        assert host.process(RandomSource(1)) is None

    def test_interrupted(self):
        host = HostAvailability(
            host_id="i0",
            arrival=Exponential(mean=10.0),
            service=Exponential(mean=4.0),
            group="g",
        )
        assert not host.is_dedicated
        assert host.arrival_rate == pytest.approx(0.1)
        assert host.mtbi == 10.0
        assert host.process(RandomSource(1)) is not None

    def test_partial_spec_rejected(self):
        with pytest.raises(ValueError, match="both"):
            HostAvailability(host_id="x", arrival=Exponential(mean=1.0))


class TestBuildGroupHosts:
    def test_counts(self):
        hosts = build_group_hosts(128, 0.5)
        assert len(hosts) == 128
        interrupted = [h for h in hosts if not h.is_dedicated]
        assert len(interrupted) == 64

    def test_even_group_split(self):
        hosts = build_group_hosts(128, 0.5)
        by_group = {}
        for host in hosts:
            by_group[host.group] = by_group.get(host.group, 0) + 1
        assert by_group["dedicated"] == 64
        # "the interrupted nodes were further divided evenly into four groups"
        for name in ("group-1", "group-2", "group-3", "group-4"):
            assert by_group[name] == 16

    def test_unique_ids(self):
        hosts = build_group_hosts(50, 0.75)
        assert len({h.host_id for h in hosts}) == 50

    def test_ratio_zero_all_dedicated(self):
        hosts = build_group_hosts(10, 0.0)
        assert all(h.is_dedicated for h in hosts)

    def test_ratio_one_none_dedicated(self):
        hosts = build_group_hosts(8, 1.0)
        assert not any(h.is_dedicated for h in hosts)

    def test_rounding(self):
        hosts = build_group_hosts(10, 0.25)
        assert sum(1 for h in hosts if not h.is_dedicated) == 2  # round(2.5) banker's

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_group_hosts(0, 0.5)
        with pytest.raises(ValueError):
            build_group_hosts(10, 1.5)

    def test_service_distribution_kinds(self):
        for kind in ("exponential", "deterministic", "lognormal"):
            hosts = build_group_hosts(8, 1.0, service_distribution=kind)
            assert hosts[0].service is not None
        with pytest.raises(ValueError):
            build_group_hosts(8, 1.0, service_distribution="zipf")

    def test_group_parameters_applied(self):
        hosts = build_group_hosts(8, 1.0)
        group1 = [h for h in hosts if h.group == "group-1"][0]
        assert group1.mtbi == 10.0
        assert group1.service_mean == 4.0
