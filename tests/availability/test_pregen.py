"""Tests for bulk episode pregeneration (repro.availability.pregen).

The load-bearing property is *bit-identity*: the bulk scalar path — bulk
seed derivation, injected streams, optional multi-process fan-out — must
deliver exactly the episodes the lazy per-host path delivers, because the
golden determinism suite pins the default build byte-for-byte.
"""

import pytest

from repro.availability.generator import build_group_hosts
from repro.availability.pregen import (
    episode_prefix,
    materialise_prefix,
    pregenerate_prefixes,
    resolve_backend,
    resolve_jobs,
    shift_episodes,
)
from repro.util.rng import RandomSource, derive_seed, derive_seeds


def hosts_for(n, seed_ratio=0.8):
    return build_group_hosts(n, seed_ratio, service_distribution="lognormal")


def lazy_prefix(host, rng, horizon, burn_in=0.0):
    """The injector's own path: lazy process, shift, materialise."""
    process = host.process(rng.substream("failures", host.host_id))
    if process is None:
        return None
    stream = process.episodes(float("inf"))
    if burn_in > 0.0:
        stream = shift_episodes(stream, burn_in)
    return materialise_prefix(stream, horizon)


class TestSeedDerivation:
    def test_derive_seeds_matches_per_leaf_derive_seed(self):
        leaves = [("h0", "arrivals"), ("h1", "arrivals"), ("h2", "service")]
        bulk = derive_seeds(123, ("failures",), leaves)
        assert bulk == [derive_seed(123, "failures", *leaf) for leaf in leaves]

    def test_from_derived_matches_substream_chain(self):
        root = RandomSource(9)
        direct = root.substream("failures", "h7").substream("arrivals")
        derived = derive_seed(9, "failures", "h7", "arrivals")
        rebuilt = RandomSource.from_derived(derived, 9, ("failures", "h7", "arrivals"))
        assert [direct.random() for _ in range(16)] == [
            rebuilt.random() for _ in range(16)
        ]


class TestScalarBitIdentity:
    def test_bulk_equals_lazy_per_host(self):
        hosts = hosts_for(40)
        horizon, burn_in = 50_000.0, 300.0
        result = pregenerate_prefixes(
            hosts, RandomSource(3), horizon, burn_in=burn_in
        )
        assert result.backend == "scalar"
        for host, prefix in zip(hosts, result.prefixes, strict=True):
            expected = lazy_prefix(host, RandomSource(3), horizon, burn_in)
            assert prefix == expected, host.host_id

    def test_episode_prefix_matches_injector_path(self):
        hosts = hosts_for(10)
        for host in hosts:
            got = episode_prefix(host, RandomSource(5), 20_000.0, burn_in=100.0)
            expected = lazy_prefix(host, RandomSource(5), 20_000.0, 100.0)
            assert got == expected

    def test_dedicated_hosts_get_none(self):
        hosts = hosts_for(10, seed_ratio=0.5)
        result = pregenerate_prefixes(hosts, RandomSource(1), 1000.0)
        for host, prefix in zip(hosts, result.prefixes, strict=True):
            if host.is_dedicated:
                assert prefix is None
            else:
                assert prefix  # prefix always holds the boundary episode

    def test_prefix_contract_boundary_episode(self):
        hosts = [h for h in hosts_for(6) if not h.is_dedicated]
        horizon = 5_000.0
        result = pregenerate_prefixes(hosts, RandomSource(2), horizon)
        for prefix in result.prefixes:
            assert prefix[-1].start >= horizon
            for episode in prefix[:-1]:
                assert episode.start < horizon


class TestParallelFanOut:
    def test_jobs_do_not_change_bytes(self):
        # Enough hosts to exceed the minimum chunk size and engage the pool.
        hosts = hosts_for(600)
        horizon = 10_000.0
        serial = pregenerate_prefixes(hosts, RandomSource(4), horizon, jobs=1)
        parallel = pregenerate_prefixes(hosts, RandomSource(4), horizon, jobs=3)
        assert parallel.jobs == 3
        assert serial.prefixes == parallel.prefixes

    def test_small_populations_stay_in_process(self):
        hosts = hosts_for(8)
        result = pregenerate_prefixes(hosts, RandomSource(4), 1000.0, jobs=4)
        expected = pregenerate_prefixes(hosts, RandomSource(4), 1000.0, jobs=1)
        assert result.prefixes == expected.prefixes


class TestKnobResolution:
    def test_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_AVAIL_BACKEND", "numpy")
        assert resolve_backend("scalar") == "numpy"
        monkeypatch.setenv("REPRO_AVAIL_BACKEND", "")
        assert resolve_backend("scalar") == "scalar"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_AVAIL_BACKEND", "cuda")
        with pytest.raises(ValueError, match="REPRO_AVAIL_BACKEND"):
            resolve_backend("scalar")
        monkeypatch.delenv("REPRO_AVAIL_BACKEND")
        with pytest.raises(ValueError):
            pregenerate_prefixes(hosts_for(2), RandomSource(0), 10.0, backend="cuda")

    def test_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREGEN_JOBS", "7")
        assert resolve_jobs(1) == 7
        monkeypatch.setenv("REPRO_PREGEN_JOBS", "not-a-number")
        assert resolve_jobs(3) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            pregenerate_prefixes(hosts_for(2), RandomSource(0), -1.0)
        # Non-positive job counts are clamped to in-process execution.
        result = pregenerate_prefixes(hosts_for(2), RandomSource(0), 10.0, jobs=0)
        assert result.jobs == 1
