"""Tests for the opt-in numpy episode backend.

The backend is *not* byte-compatible with the scalar kernel (PCG64 vs
Mersenne Twister), so it carries its own golden pins — regenerating them
after an intentional algorithm change is expected; silent drift is not —
plus structural invariants and a statistical-equivalence (KS) check
against the scalar kernel.
"""

import math

import pytest

np = pytest.importorskip("numpy")

from repro.availability.distributions import Deterministic, Exponential, Lognormal
from repro.availability.generator import HostAvailability
from repro.availability.numpy_backend import (
    DEFAULT_MAX_PER_EPISODE,
    FOLD_CAP,
    available,
    episode_prefix_numpy,
)
from repro.availability.pregen import episode_prefix, pregenerate_prefixes
from repro.util.rng import RandomSource

ARRIVAL = Exponential(mean=3600.0)


def prefix(seed, horizon, service, burn_in=0.0, max_per=DEFAULT_MAX_PER_EPISODE):
    eps = episode_prefix_numpy(
        ARRIVAL, service, seed, horizon, burn_in=burn_in, max_per=max_per
    )
    assert eps is not None
    return eps


class TestGoldenPins:
    """Exact realisations for pinned seeds (this backend's own goldens)."""

    def test_lognormal_service(self):
        eps = prefix(424242, 40_000.0, Lognormal(mean=600.0, cov=1.5))
        assert len(eps) == 10
        got = [(e.start, e.end, e.interruption_count) for e in eps[:4]]
        assert got == [
            (1604.7070511235725, 2174.6749186461457, 1),
            (2208.6222024997755, 2679.6811409482343, 1),
            (2710.184115463883, 2976.5923227298417, 1),
            (5352.182251494132, 7697.4487964840755, 3),
        ]

    def test_exponential_service_with_burn_in(self):
        eps = prefix(31337, 40_000.0, Exponential(mean=900.0), burn_in=1000.0)
        assert len(eps) == 12
        got = [(e.start, e.end, e.interruption_count) for e in eps[:3]]
        assert got == [
            (2862.153080860743, 3883.4411402125825, 1),
            (10193.362994152689, 11482.278680581552, 2),
            (14928.417954584475, 15016.010186536289, 1),
        ]

    def test_deterministic_service(self):
        eps = prefix(777, 30_000.0, Deterministic(value=500.0))
        assert len(eps) == 6
        got = [(e.start, e.end, e.interruption_count) for e in eps[:3]]
        assert got == [
            (8415.928103373239, 9415.928103373239, 2),
            (18443.89963139544, 18943.89963139544, 1),
            (21515.97848966059, 23015.97848966059, 3),
        ]


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        svc = Lognormal(mean=600.0, cov=2.0)
        a = prefix(5, 100_000.0, svc)
        b = prefix(5, 100_000.0, svc)
        assert a == b

    def test_different_seeds_differ(self):
        svc = Lognormal(mean=600.0, cov=2.0)
        assert prefix(5, 100_000.0, svc) != prefix(6, 100_000.0, svc)


class TestStructure:
    @pytest.mark.parametrize(
        "service",
        [
            Lognormal(mean=600.0, cov=1.5),
            Exponential(mean=900.0),
            Deterministic(value=500.0),
        ],
    )
    def test_episodes_disjoint_ordered_positive(self, service):
        horizon = 200_000.0
        eps = prefix(11, horizon, service)
        prev_end = -1.0
        for e in eps:
            assert e.end > e.start >= 0.0
            assert e.start >= prev_end
            assert e.interruption_count >= 1
            prev_end = e.end
        # Prefix contract: everything but the boundary episode starts
        # before the horizon; the boundary episode starts at/past it.
        assert eps[-1].start >= horizon
        for e in eps[:-1]:
            assert e.start < horizon

    def test_unsupported_arrival_returns_none(self):
        assert (
            episode_prefix_numpy(
                Deterministic(value=100.0), Exponential(mean=1.0), 1, 100.0
            )
            is None
        )

    def test_truncation_cap_respected(self):
        # An unstable host (rho >> 1): every episode folds to the cap.
        arr = Exponential(mean=100.0)
        svc = Exponential(mean=1000.0)
        eps = episode_prefix_numpy(arr, svc, 99, 500_000.0, max_per=200)
        assert eps is not None
        assert all(e.interruption_count <= 200 for e in eps)
        assert any(e.interruption_count == 200 for e in eps)

    def test_burn_in_shifts_and_clips(self):
        # Same raw horizon (horizon + burn_in) on both sides, so batch
        # sizes — and with them the draw stream — line up exactly.
        svc = Exponential(mean=900.0)
        raw = prefix(31337, 41_000.0, svc)
        shifted = prefix(31337, 40_000.0, svc, burn_in=1000.0)
        # Same draw stream: each shifted episode is a raw episode - 1000,
        # clipped at zero.
        raw_shifted = [
            (max(e.start - 1000.0, 0.0), e.end - 1000.0, e.interruption_count)
            for e in raw
            if e.end - 1000.0 > 0.0
        ]
        got = [(e.start, e.end, e.interruption_count) for e in shifted]
        assert got == raw_shifted[: len(got)]

    def test_fold_cap_tail_aggregation(self):
        # With max_per far above FOLD_CAP, a truncated episode's duration
        # includes one aggregate tail draw: expect roughly max_per * mean
        # of service time per truncated episode.
        arr = Exponential(mean=10.0)
        svc = Exponential(mean=100.0)
        eps = episode_prefix_numpy(arr, svc, 17, 1.0)
        assert eps is not None
        truncated = [e for e in eps if e.interruption_count == DEFAULT_MAX_PER_EPISODE]
        assert truncated, "an unstable host must truncate"
        for e in truncated:
            expected = DEFAULT_MAX_PER_EPISODE * svc.mean
            assert e.duration == pytest.approx(expected, rel=0.25)
        assert DEFAULT_MAX_PER_EPISODE > FOLD_CAP


class TestAvailabilityGate:
    def test_available_is_true_here(self):
        assert available()


def _ks_statistic(xs, ys):
    """Two-sample Kolmogorov-Smirnov statistic, no scipy needed."""
    xs, ys = sorted(xs), sorted(ys)
    i = j = 0
    d = 0.0
    while i < len(xs) and j < len(ys):
        if xs[i] <= ys[j]:
            i += 1
        else:
            j += 1
        d = max(d, abs(i / len(xs) - j / len(ys)))
    return d


class TestStatisticalEquivalence:
    """KS test vs the scalar kernel on a stable host's realisations."""

    HOST = HostAvailability(
        host_id="ks-host",
        arrival=Exponential(mean=2000.0),
        service=Lognormal(mean=400.0, cov=1.5),
        group="test",
    )

    def _samples(self):
        horizon = 3_000_000.0
        scalar = episode_prefix(self.HOST, RandomSource(123), horizon)
        result = pregenerate_prefixes(
            [self.HOST], RandomSource(123), horizon, backend="numpy"
        )
        vector = result.prefixes[0]
        return scalar, vector

    def test_durations_and_gaps_same_law(self):
        scalar, vector = self._samples()
        # Both series are sizeable — same horizon, same rates.
        assert min(len(scalar), len(vector)) > 400
        alpha_coeff = 1.95  # c(alpha) for alpha ~= 0.001
        for attr in ("duration",):
            xs = [getattr(e, attr) for e in scalar]
            ys = [getattr(e, attr) for e in vector]
            d = _ks_statistic(xs, ys)
            bound = alpha_coeff * math.sqrt((len(xs) + len(ys)) / (len(xs) * len(ys)))
            assert d < bound, f"{attr}: D={d:.4f} bound={bound:.4f}"
        gaps_x = [
            b.start - a.end for a, b in zip(scalar, scalar[1:], strict=False)
        ]
        gaps_y = [
            b.start - a.end for a, b in zip(vector, vector[1:], strict=False)
        ]
        d = _ks_statistic(gaps_x, gaps_y)
        bound = alpha_coeff * math.sqrt(
            (len(gaps_x) + len(gaps_y)) / (len(gaps_x) * len(gaps_y))
        )
        assert d < bound, f"gaps: D={d:.4f} bound={bound:.4f}"

    def test_episode_counts_close(self):
        scalar, vector = self._samples()
        assert len(vector) == pytest.approx(len(scalar), rel=0.15)
