"""Tests for the synthetic SETI@home trace model (Table 1 substitution)."""

import math

import pytest

from repro.availability.seti import (
    TABLE1_DURATION_COV,
    TABLE1_DURATION_MEAN,
    TABLE1_MTBI_COV,
    TABLE1_MTBI_MEAN,
    SetiModelParams,
    SetiTraceGenerator,
    calibrate_empirically,
)
from repro.availability.traces import pooled_summary
from repro.util.rng import RandomSource


class TestClosedFormCalibration:
    def test_pooled_moment_formulas(self):
        params = SetiModelParams.calibrated_to_table1()
        # The closed forms must reproduce the targets they were solved from.
        assert params.expected_pooled_mtbi_mean() == pytest.approx(TABLE1_MTBI_MEAN)
        assert params.expected_pooled_mtbi_cov() == pytest.approx(TABLE1_MTBI_COV)
        assert params.expected_pooled_duration_cov() == pytest.approx(TABLE1_DURATION_COV)

    def test_population_mean_exceeds_pooled_mean(self):
        # Length-biased pooling favours short-MTBI hosts, so the population
        # mean must sit above the pooled mean.
        params = SetiModelParams.calibrated_to_table1()
        assert params.mtbi_population_mean > TABLE1_MTBI_MEAN

    def test_rejects_low_cov(self):
        # Pooled CoV of exponential gaps cannot go below 1.
        with pytest.raises(ValueError, match="exceed 1"):
            SetiModelParams.calibrated_to_table1(mtbi_cov=0.9)

    def test_rejects_excess_within_cov(self):
        with pytest.raises(ValueError, match="lower it"):
            SetiModelParams.calibrated_to_table1(
                duration_cov=2.0, duration_within_cov=5.0
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            SetiModelParams(
                mtbi_population_mean=-1.0,
                mtbi_population_sigma=1.0,
                duration_mean=1.0,
                duration_between_cov=1.0,
                duration_within_cov=1.0,
            )


class TestGenerator:
    def setup_method(self):
        self.params = SetiModelParams.calibrated_to_table1()
        self.generator = SetiTraceGenerator(self.params, RandomSource(5))

    def test_host_sampling_is_index_stable(self):
        # Host k must be identical regardless of how many hosts are drawn.
        a = self.generator.sample_hosts(10)
        b = self.generator.sample_hosts(50)
        assert a[7].mtbi == b[7].mtbi
        assert a[7].service_mean == b[7].service_mean

    def test_hosts_are_heterogeneous(self):
        hosts = self.generator.sample_hosts(200)
        mtbis = sorted(h.mtbi for h in hosts)
        assert mtbis[-1] / mtbis[0] > 10.0

    def test_all_hosts_interruptible(self):
        hosts = self.generator.sample_hosts(20)
        assert all(not h.is_dedicated for h in hosts)

    def test_trace_generation(self):
        trace = self.generator.sample_trace(0, horizon=1e7)
        assert trace.horizon == 1e7

    def test_count_validation(self):
        with pytest.raises(ValueError):
            self.generator.sample_hosts(0)

    def test_pooled_stats_are_heavy_tailed(self):
        # The property the evaluation depends on: CoV >> 1 (Table 1 shows
        # 4.4 and 7.4). Tolerances are loose because heavy-tail statistics
        # converge slowly.
        traces = self.generator.sample_traces(300, horizon=1.5 * 365 * 86400.0)
        stats = pooled_summary(traces)
        assert stats["mtbi"].cov > 1.5
        assert stats["duration"].cov > 1.5
        assert stats["mtbi"].count > 1000


class TestEmpiricalCalibration:
    def test_small_calibration_moves_toward_target(self):
        # A tiny calibration run must land the pooled MTBI mean within a
        # factor ~2 of the target (the closed form starts ~2x off).
        params = calibrate_empirically(node_count=120, iterations=3, seed=1)
        generator = SetiTraceGenerator(params, RandomSource(42))
        stats = pooled_summary(generator.sample_traces(200, 1.5 * 365 * 86400.0))
        ratio = stats["mtbi"].mean / TABLE1_MTBI_MEAN
        assert 0.4 < ratio < 2.5
