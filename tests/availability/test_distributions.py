"""Tests for the distribution family: analytic moments vs samples."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.distributions import (
    Deterministic,
    Exponential,
    Lognormal,
    Pareto,
    ShiftedPareto,
    Weibull,
    distribution_from_spec,
)
from repro.util.rng import RandomSource
from repro.util.stats import RunningStats


def _sample_stats(dist, seed=7, n=20000):
    rng = RandomSource(seed)
    acc = RunningStats()
    for _ in range(n):
        acc.add(dist.sample(rng))
    return acc


class TestExponential:
    def test_moments(self):
        d = Exponential(mean=10.0)
        assert d.mean == 10.0
        assert d.std == 10.0
        assert d.cov == 1.0
        assert d.rate == pytest.approx(0.1)

    def test_samples_match_mean(self):
        acc = _sample_stats(Exponential(mean=5.0))
        assert acc.mean == pytest.approx(5.0, rel=0.05)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Exponential(mean=0)

    @given(st.floats(min_value=0.01, max_value=1e4))
    @settings(max_examples=30)
    def test_cov_always_one(self, mean):
        assert Exponential(mean=mean).cov == pytest.approx(1.0)


class TestDeterministic:
    def test_point_mass(self):
        d = Deterministic(value=3.0)
        rng = RandomSource(1)
        assert d.mean == 3.0
        assert d.std == 0.0
        assert all(d.sample(rng) == 3.0 for _ in range(10))


class TestLognormal:
    def test_target_moments(self):
        d = Lognormal(mean=100.0, cov=2.0)
        assert d.mean == pytest.approx(100.0)
        assert d.std == pytest.approx(200.0)

    def test_samples_match_mean(self):
        acc = _sample_stats(Lognormal(mean=50.0, cov=0.5), n=30000)
        assert acc.mean == pytest.approx(50.0, rel=0.05)

    def test_samples_match_cov(self):
        acc = _sample_stats(Lognormal(mean=50.0, cov=0.8), n=50000)
        assert acc.std / acc.mean == pytest.approx(0.8, rel=0.15)

    def test_from_underlying_roundtrip(self):
        d = Lognormal(mean=100.0, cov=2.0)
        d2 = Lognormal.from_underlying(d.mu, d.sigma)
        assert d2.mean == pytest.approx(d.mean)
        assert d2.std == pytest.approx(d.std)

    @given(
        st.floats(min_value=0.1, max_value=1e5),
        st.floats(min_value=0.05, max_value=8.0),
    )
    @settings(max_examples=50)
    def test_parameterisation_invertible(self, mean, cov):
        d = Lognormal(mean=mean, cov=cov)
        # mean = exp(mu + sigma^2/2) must hold.
        assert math.exp(d.mu + d.sigma**2 / 2) == pytest.approx(mean, rel=1e-9)


class TestWeibull:
    def test_exponential_special_case(self):
        # shape=1 reduces to exponential.
        d = Weibull(scale=10.0, shape=1.0)
        assert d.mean == pytest.approx(10.0)
        assert d.std == pytest.approx(10.0)

    def test_samples_match(self):
        d = Weibull(scale=10.0, shape=2.0)
        acc = _sample_stats(d, n=30000)
        assert acc.mean == pytest.approx(d.mean, rel=0.05)


class TestPareto:
    def test_moments(self):
        d = Pareto(xm=1.0, alpha=3.0)
        assert d.mean == pytest.approx(1.5)
        assert d.std == pytest.approx(math.sqrt(3.0 / (4 * 1)), rel=1e-9)

    def test_undefined_moments_raise(self):
        with pytest.raises(ValueError):
            _ = Pareto(xm=1.0, alpha=0.9).mean
        with pytest.raises(ValueError):
            _ = Pareto(xm=1.0, alpha=1.5).std

    def test_support(self):
        d = Pareto(xm=2.0, alpha=2.5)
        rng = RandomSource(3)
        assert all(d.sample(rng) >= 2.0 for _ in range(100))


class TestShiftedPareto:
    def test_mean(self):
        d = ShiftedPareto(scale=10.0, alpha=3.0)
        assert d.mean == pytest.approx(5.0)

    def test_samples_match_mean(self):
        d = ShiftedPareto(scale=10.0, alpha=4.0)
        acc = _sample_stats(d, n=50000)
        assert acc.mean == pytest.approx(d.mean, rel=0.1)

    def test_support_starts_at_zero(self):
        d = ShiftedPareto(scale=1.0, alpha=2.0)
        rng = RandomSource(3)
        assert all(d.sample(rng) >= 0.0 for _ in range(100))


class TestSpecParsing:
    def test_exponential_spec(self):
        d = distribution_from_spec({"kind": "exponential", "mean": 4})
        assert isinstance(d, Exponential)
        assert d.mean == 4.0

    def test_lognormal_spec(self):
        d = distribution_from_spec({"kind": "lognormal", "mean": 9, "cov": 2})
        assert isinstance(d, Lognormal)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown distribution kind"):
            distribution_from_spec({"kind": "zipf"})

    def test_missing_kind(self):
        with pytest.raises(ValueError, match="requires a 'kind'"):
            distribution_from_spec({"mean": 1})
