"""Bit-identity of the batched/inlined sampling paths to the scalar ones.

The scale kernel speeds up availability sampling two ways: batched
``Distribution.sample_many`` overrides and per-distribution-pair inlined
episode generators (``InterruptionProcess._episodes_expo_lognormal`` /
``_episodes_expo_expo``). Both promise the *same floats* as the scalar
reference — goldens depend on it — so every test here asserts exact
``==``, never ``approx``, and also checks the RNG stream is left in the
same state (batched and scalar consumers must interleave freely).
"""

import pytest

from repro.availability.distributions import (
    Deterministic,
    Exponential,
    Lognormal,
    Pareto,
    ShiftedPareto,
    Weibull,
)
from repro.availability.process import InterruptionProcess
from repro.util.rng import RandomSource

DISTRIBUTIONS = [
    Exponential(mean=3.0),
    Deterministic(value=2.5),
    Lognormal(mean=4.0, cov=1.5),
    Weibull(scale=3.0, shape=0.7),
    Pareto(xm=2.0, alpha=2.5),
    ShiftedPareto(scale=2.0, alpha=2.5),
]


@pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=lambda d: type(d).__name__)
class TestSampleManyBitIdentity:
    def test_matches_scalar_draws(self, dist):
        scalar_rng = RandomSource(42).substream("x")
        batch_rng = RandomSource(42).substream("x")
        scalar = [dist.sample(scalar_rng) for _ in range(257)]
        batch = dist.sample_many(batch_rng, 257)
        assert batch == scalar  # exact: same floats, bit for bit

    def test_leaves_stream_in_same_state(self, dist):
        scalar_rng = RandomSource(7).substream("x")
        batch_rng = RandomSource(7).substream("x")
        for _ in range(100):
            dist.sample(scalar_rng)
        dist.sample_many(batch_rng, 100)
        # Interleaving after the batch must continue the same stream.
        assert [dist.sample(batch_rng) for _ in range(10)] == [
            dist.sample(scalar_rng) for _ in range(10)
        ]

    def test_count_zero_draws_nothing(self, dist):
        rng = RandomSource(3).substream("x")
        assert dist.sample_many(rng, 0) == []
        assert dist.sample(rng) == dist.sample(RandomSource(3).substream("x"))


def _episode_pairs():
    """(arrival, service) cases covering every specialised dispatch."""
    return [
        # SETI populations: exponential arrivals, lognormal recovery.
        ("expo-lognormal-stable", Exponential(mean=2000.0), Lognormal(mean=300.0, cov=2.0)),
        ("expo-lognormal-unstable", Exponential(mean=10.0), Lognormal(mean=40.0, cov=1.2)),
        # Table 2 emulation: exponential/exponential.
        ("expo-expo-stable", Exponential(mean=900.0), Exponential(mean=120.0)),
        ("expo-expo-unstable", Exponential(mean=5.0), Exponential(mean=25.0)),
        # Generic fallbacks (no specialisation; sanity that dispatch
        # doesn't change them either).
        ("expo-deterministic", Exponential(mean=500.0), Deterministic(value=90.0)),
        ("weibull-lognormal", Weibull(scale=800.0, shape=0.8), Lognormal(mean=100.0, cov=1.0)),
    ]


@pytest.mark.parametrize(
    "arrival,service",
    [pytest.param(a, s, id=name) for name, a, s in _episode_pairs()],
)
class TestEpisodeSpecialisationBitIdentity:
    HORIZON = 500_000.0

    def test_specialised_matches_generic(self, arrival, service):
        fast = InterruptionProcess(arrival, service, RandomSource(11).substream("h"))
        ref = InterruptionProcess(arrival, service, RandomSource(11).substream("h"))
        got = list(fast.episodes(self.HORIZON))
        clock = ref._rng.substream("arrivals")
        svc = ref._rng.substream("service")
        want = list(ref._episodes_generic(clock, svc, self.HORIZON))
        assert got == want  # dataclass equality on exact floats

    def test_truncation_cap_identical(self, arrival, service):
        # A tiny per-episode cap forces the truncation branch on every
        # episode; the specialised paths must take it identically.
        fast = InterruptionProcess(
            arrival, service, RandomSource(5).substream("h"), max_interruptions_per_episode=2
        )
        ref = InterruptionProcess(
            arrival, service, RandomSource(5).substream("h"), max_interruptions_per_episode=2
        )
        got = list(fast.episodes(50_000.0))
        clock = ref._rng.substream("arrivals")
        svc = ref._rng.substream("service")
        want = list(ref._episodes_generic(clock, svc, 50_000.0))
        assert got == want

    def test_stream_continuation_identical(self, arrival, service):
        # Long streams: after thousands of episodes the uniform streams of
        # the fast and reference paths are still in lockstep.
        fast = InterruptionProcess(arrival, service, RandomSource(23).substream("h"))
        ref = InterruptionProcess(arrival, service, RandomSource(23).substream("h"))
        fast_iter = fast.episodes(10**9)
        clock = ref._rng.substream("arrivals")
        svc = ref._rng.substream("service")
        ref_iter = ref._episodes_generic(clock, svc, 10**9)
        for _ in range(2000):
            assert next(fast_iter) == next(ref_iter)
