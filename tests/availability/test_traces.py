"""Tests for availability traces (interval algebra)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.distributions import Exponential
from repro.availability.process import DowntimeEpisode, InterruptionProcess
from repro.availability.traces import AvailabilityTrace, pooled_summary
from repro.util.rng import RandomSource


def make_trace(windows, horizon=100.0, host="h0"):
    return AvailabilityTrace(host, horizon, windows)


class TestConstruction:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            make_trace([(10.0, 20.0), (5.0, 8.0)])

    def test_rejects_overlapping(self):
        with pytest.raises(ValueError, match="sorted"):
            make_trace([(0.0, 10.0), (5.0, 15.0)])

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty or inverted"):
            make_trace([(5.0, 5.0)])

    def test_clips_at_horizon(self):
        trace = make_trace([(90.0, 150.0)], horizon=100.0)
        assert trace.down_windows == [(90.0, 100.0)]

    def test_drops_windows_past_horizon(self):
        trace = make_trace([(150.0, 160.0)], horizon=100.0)
        assert trace.down_windows == []

    def test_always_up(self):
        trace = AvailabilityTrace.always_up("h", 50.0)
        assert trace.uptime_fraction() == 1.0
        assert trace.interruption_count() == 0

    def test_from_episodes(self):
        eps = [DowntimeEpisode(1.0, 2.0, 1), DowntimeEpisode(5.0, 9.0, 2)]
        trace = AvailabilityTrace.from_episodes("h", 10.0, eps)
        assert trace.down_windows == [(1.0, 2.0), (5.0, 9.0)]


class TestQueries:
    def setup_method(self):
        self.trace = make_trace([(10.0, 20.0), (50.0, 60.0)], horizon=100.0)

    def test_is_up(self):
        assert self.trace.is_up(0.0)
        assert self.trace.is_up(9.999)
        assert not self.trace.is_up(10.0)
        assert not self.trace.is_up(19.999)
        assert self.trace.is_up(20.0)
        assert not self.trace.is_up(55.0)
        assert self.trace.is_up(99.0)

    def test_is_up_out_of_range(self):
        with pytest.raises(ValueError):
            self.trace.is_up(-1.0)
        with pytest.raises(ValueError):
            self.trace.is_up(100.0)

    def test_next_transition(self):
        assert self.trace.next_transition(0.0) == 10.0
        assert self.trace.next_transition(10.0) == 20.0
        assert self.trace.next_transition(15.0) == 20.0
        assert self.trace.next_transition(20.0) == 50.0
        assert self.trace.next_transition(60.0) == 100.0  # horizon

    def test_downtime_accounting(self):
        assert self.trace.total_downtime() == pytest.approx(20.0)
        assert self.trace.uptime_fraction() == pytest.approx(0.8)
        assert self.trace.interruption_count() == 2

    def test_mtbi_samples(self):
        assert self.trace.mtbi_samples() == [10.0, 40.0]

    def test_duration_samples(self):
        assert self.trace.duration_samples() == [10.0, 10.0]

    def test_up_windows_complement(self):
        ups = self.trace.up_windows()
        assert ups == [(0.0, 10.0), (20.0, 50.0), (60.0, 100.0)]
        total = sum(e - s for s, e in ups) + self.trace.total_downtime()
        assert total == pytest.approx(self.trace.horizon)


@st.composite
def window_lists(draw):
    """Sorted disjoint windows inside [0, 100)."""
    n = draw(st.integers(min_value=0, max_value=6))
    points = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=99.0, allow_nan=False),
            min_size=2 * n,
            max_size=2 * n,
            unique=True,
        )
    )
    points.sort()
    return [(points[2 * i], points[2 * i + 1]) for i in range(n)]


class TestTraceProperties:
    @given(window_lists())
    @settings(max_examples=100)
    def test_state_consistent_with_windows(self, windows):
        trace = make_trace(windows, horizon=100.0)
        for start, end in trace.down_windows:
            mid = (start + end) / 2
            if start < mid < end:  # guard float-degenerate midpoints
                assert not trace.is_up(mid)
        for start, end in trace.up_windows():
            mid = (start + end) / 2
            if start < mid < end:
                assert trace.is_up(mid)

    @given(window_lists())
    @settings(max_examples=100)
    def test_uptime_plus_downtime_is_horizon(self, windows):
        trace = make_trace(windows, horizon=100.0)
        up = sum(e - s for s, e in trace.up_windows())
        assert up + trace.total_downtime() == pytest.approx(100.0)

    @given(window_lists(), st.floats(min_value=0.0, max_value=99.0))
    @settings(max_examples=100)
    def test_next_transition_flips_state(self, windows, t):
        trace = make_trace(windows, horizon=100.0)
        nxt = trace.next_transition(t)
        assert nxt > t
        if nxt < trace.horizon:
            assert trace.is_up(nxt) != trace.is_up(t) or nxt == trace.horizon


class TestFromProcess:
    def test_roundtrip_consistency(self):
        process = InterruptionProcess(
            Exponential(mean=10.0), Exponential(mean=2.0), RandomSource(3)
        )
        trace = AvailabilityTrace.from_process("h", 500.0, process)
        assert trace.interruption_count() > 5
        assert 0.0 < trace.uptime_fraction() < 1.0


class TestPooledSummary:
    def test_pools_across_hosts(self):
        t1 = make_trace([(10.0, 20.0)], host="a")
        t2 = make_trace([(30.0, 35.0)], host="b")
        stats = pooled_summary([t1, t2])
        assert stats["mtbi"].count == 2
        assert stats["duration"].mean == pytest.approx(7.5)

    def test_no_interruptions_raises(self):
        with pytest.raises(ValueError, match="no interruptions"):
            pooled_summary([AvailabilityTrace.always_up("a", 10.0)])
