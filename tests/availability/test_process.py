"""Tests for the M/G/1 interruption process."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.distributions import Deterministic, Exponential
from repro.availability.process import (
    DowntimeEpisode,
    InterruptionProcess,
    merge_episode_stream,
)
from repro.util.rng import RandomSource
from repro.util.stats import RunningStats


def _process(mtbi=10.0, mu=2.0, seed=5, **kwargs):
    return InterruptionProcess(
        arrival=Exponential(mean=mtbi),
        service=Exponential(mean=mu),
        rng=RandomSource(seed),
        **kwargs,
    )


class TestEpisodeInvariants:
    def test_episodes_sorted_and_disjoint(self):
        episodes = _process().episodes_list(horizon=5000.0)
        assert episodes, "expected at least one episode"
        for prev, cur in zip(episodes, episodes[1:], strict=False):
            assert prev.end <= cur.start
        assert all(e.start < 5000.0 for e in episodes)

    def test_episode_validation(self):
        with pytest.raises(ValueError):
            DowntimeEpisode(start=5.0, end=4.0, interruption_count=1)
        with pytest.raises(ValueError):
            DowntimeEpisode(start=1.0, end=2.0, interruption_count=0)

    def test_deterministic_given_seed(self):
        a = _process(seed=11).episodes_list(2000.0)
        b = _process(seed=11).episodes_list(2000.0)
        assert [(e.start, e.end) for e in a] == [(e.start, e.end) for e in b]

    def test_different_seeds_differ(self):
        a = _process(seed=11).episodes_list(2000.0)
        b = _process(seed=12).episodes_list(2000.0)
        assert [(e.start, e.end) for e in a] != [(e.start, e.end) for e in b]

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_for_any_seed(self, seed):
        episodes = _process(seed=seed).episodes_list(1000.0)
        for episode in episodes:
            assert episode.duration >= 0
            assert episode.interruption_count >= 1
        for prev, cur in zip(episodes, episodes[1:], strict=False):
            assert prev.end <= cur.start


class TestQueueingTheory:
    def test_utilization(self):
        p = _process(mtbi=10.0, mu=4.0)
        assert p.utilization == pytest.approx(0.4)
        assert p.is_stable()

    def test_expected_episode_matches_formula3(self):
        # E[Y] = mu / (1 - lambda*mu): the paper's formula (3).
        p = _process(mtbi=10.0, mu=4.0)
        assert p.expected_episode_duration() == pytest.approx(4.0 / 0.6)

    def test_unstable_has_no_expected_episode(self):
        p = _process(mtbi=2.0, mu=4.0)
        assert not p.is_stable()
        with pytest.raises(ValueError, match="unstable"):
            p.expected_episode_duration()

    def test_busy_period_mean_empirical(self):
        # Sampled mean episode length should approach mu/(1-rho).
        acc = RunningStats()
        for seed in range(40):
            for episode in _process(mtbi=10.0, mu=3.0, seed=seed).episodes(20000.0):
                acc.add(episode.duration)
        assert acc.mean == pytest.approx(3.0 / 0.7, rel=0.1)

    def test_arrival_rate_of_episodes(self):
        # Busy periods start at rate lambda*(1-rho) in steady state.
        p = _process(mtbi=10.0, mu=3.0, seed=2)
        horizon = 200000.0
        count = len(p.episodes_list(horizon))
        expected = horizon * (1.0 / 10.0) * (1.0 - 0.3)
        assert count == pytest.approx(expected, rel=0.1)


class TestUnstableSafety:
    def test_unstable_process_terminates(self):
        # lambda*mu = 5 >> 1: without the episode cap this would hang.
        p = _process(mtbi=1.0, mu=5.0, seed=3, max_interruptions_per_episode=100)
        episodes = p.episodes_list(horizon=10.0)
        assert episodes
        assert all(e.interruption_count <= 100 for e in episodes)

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            _process(max_interruptions_per_episode=0)

    def test_capped_episode_is_long(self):
        # The truncated busy period still represents a long departure.
        p = _process(mtbi=1.0, mu=5.0, seed=3, max_interruptions_per_episode=50)
        first = p.episodes_list(horizon=10.0)[0]
        assert first.duration > 50.0  # >> typical recovery


class TestDeterministicService:
    def test_fixed_recovery(self):
        p = InterruptionProcess(
            arrival=Exponential(mean=100.0),
            service=Deterministic(value=2.0),
            rng=RandomSource(1),
        )
        episodes = p.episodes_list(horizon=10000.0)
        # With rho = 0.02, almost every episode is a single interruption.
        singles = [e for e in episodes if e.interruption_count == 1]
        assert len(singles) >= 0.9 * len(episodes)
        for e in singles:
            assert e.duration == pytest.approx(2.0)


class TestMergeStream:
    def test_merges_overlaps(self):
        eps = [
            DowntimeEpisode(0.0, 5.0, 1),
            DowntimeEpisode(4.0, 8.0, 1),
            DowntimeEpisode(10.0, 12.0, 2),
        ]
        merged = list(merge_episode_stream(iter(eps)))
        assert len(merged) == 2
        assert merged[0].start == 0.0
        assert merged[0].end == 8.0
        assert merged[0].interruption_count == 2
        assert merged[1].interruption_count == 2

    def test_merges_touching(self):
        eps = [DowntimeEpisode(0.0, 5.0, 1), DowntimeEpisode(5.0, 6.0, 1)]
        merged = list(merge_episode_stream(iter(eps)))
        assert len(merged) == 1

    def test_empty(self):
        assert list(merge_episode_stream(iter([]))) == []
