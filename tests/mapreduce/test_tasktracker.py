"""Tests for TaskTracker execution and interruption semantics."""

import pytest

from repro.hdfs.blocks import DfsFile
from repro.mapreduce.job import AttemptState, JobConf, MapJob
from repro.mapreduce.tasktracker import TaskTracker
from repro.simulator.engine import Simulator
from repro.simulator.metrics import MapPhaseMetrics
from repro.simulator.network import Network


class StubJobTracker:
    def __init__(self):
        self.succeeded = []
        self.failed = []
        self.available = []

    def on_attempt_succeeded(self, attempt):
        self.succeeded.append(attempt)

    def on_attempt_failed(self, attempt):
        self.failed.append(attempt)

    def on_node_available(self, node_id):
        self.available.append(node_id)


def setup(gamma=10.0, block_size=1000, bandwidth=100.0, slots=1):
    sim = Simulator()
    net = Network(sim, uplink_bps=bandwidth)
    metrics = MapPhaseMetrics()
    tracker = TaskTracker(sim, "node", net, metrics, slots=slots)
    jt = StubJobTracker()
    tracker.bind(jt)
    f = DfsFile.build("in", 4, block_size, 1)
    job = MapJob.uniform(JobConf(), f, gamma)
    return sim, net, metrics, tracker, jt, job


class TestLocalExecution:
    def test_completes_after_gamma(self):
        sim, _n, metrics, tracker, jt, job = setup(gamma=10.0)
        attempt = job.tasks[0].new_attempt("node", local=True, speculative=False, now=0.0)
        tracker.execute(attempt)
        sim.run()
        assert attempt.state is AttemptState.SUCCEEDED
        assert attempt.finished_at == pytest.approx(10.0)
        assert jt.succeeded == [attempt]
        assert metrics.useful_time == pytest.approx(10.0)

    def test_slot_accounting(self):
        sim, _n, _m, tracker, jt, job = setup()
        attempt = job.tasks[0].new_attempt("node", local=True, speculative=False, now=0.0)
        tracker.execute(attempt)
        assert tracker.free_slots == 0
        sim.run()
        assert tracker.free_slots == 1
        assert tracker.busy_seconds == pytest.approx(10.0)

    def test_slot_overflow_rejected(self):
        sim, _n, _m, tracker, jt, job = setup(slots=1)
        a0 = job.tasks[0].new_attempt("node", local=True, speculative=False, now=0.0)
        a1 = job.tasks[1].new_attempt("node", local=True, speculative=False, now=0.0)
        tracker.execute(a0)
        with pytest.raises(RuntimeError, match="no free slot"):
            tracker.execute(a1)

    def test_wrong_node_rejected(self):
        sim, _n, _m, tracker, jt, job = setup()
        attempt = job.tasks[0].new_attempt("other", local=True, speculative=False, now=0.0)
        with pytest.raises(ValueError):
            tracker.execute(attempt)


class TestRemoteExecution:
    def test_fetch_then_execute(self):
        # 1000 bytes at 100 B/s = 10s fetch, then 10s execution.
        sim, _n, metrics, tracker, jt, job = setup(gamma=10.0)
        attempt = job.tasks[0].new_attempt(
            "node", local=False, speculative=False, now=0.0, source_node="src"
        )
        tracker.execute(attempt)
        sim.run()
        assert attempt.state is AttemptState.SUCCEEDED
        assert attempt.finished_at == pytest.approx(20.0)
        assert metrics.migration_time == pytest.approx(10.0)
        assert metrics.migrations == 1


class TestInterruption:
    def test_running_attempt_becomes_rework(self):
        sim, _n, metrics, tracker, jt, job = setup(gamma=10.0)
        attempt = job.tasks[0].new_attempt("node", local=True, speculative=False, now=0.0)
        tracker.execute(attempt)
        sim.schedule(4.0, lambda: tracker.on_node_down(4.0))
        sim.run()
        assert attempt.state is AttemptState.FAILED
        assert metrics.rework_time == pytest.approx(4.0)
        assert metrics.useful_time == 0.0
        assert jt.failed == [attempt]
        assert not tracker.is_up

    def test_fetching_attempt_charges_partial_migration(self):
        sim, _n, metrics, tracker, jt, job = setup(gamma=10.0)
        attempt = job.tasks[0].new_attempt(
            "node", local=False, speculative=False, now=0.0, source_node="src"
        )
        tracker.execute(attempt)
        sim.schedule(3.0, lambda: tracker.on_node_down(3.0))
        sim.run()
        assert attempt.state is AttemptState.FAILED
        assert metrics.migration_time == pytest.approx(3.0)
        assert metrics.rework_time == 0.0

    def test_node_up_notifies_jobtracker(self):
        sim, _n, _m, tracker, jt, job = setup()
        sim.schedule(1.0, lambda: tracker.on_node_down(1.0))
        sim.schedule(5.0, lambda: tracker.on_node_up(5.0))
        sim.run()
        assert jt.available == ["node"]
        assert tracker.is_up

    def test_execute_while_down_rejected(self):
        sim, _n, _m, tracker, jt, job = setup()
        tracker.on_node_down(0.0)
        attempt = job.tasks[0].new_attempt("node", local=True, speculative=False, now=0.0)
        with pytest.raises(RuntimeError, match="down"):
            tracker.execute(attempt)


class TestKill:
    def test_kill_running_charges_duplicate(self):
        sim, _n, metrics, tracker, jt, job = setup(gamma=10.0)
        attempt = job.tasks[0].new_attempt("node", local=True, speculative=True, now=0.0)
        tracker.execute(attempt)
        sim.schedule(6.0, lambda: tracker.kill(attempt))
        sim.run()
        assert attempt.state is AttemptState.KILLED
        assert metrics.duplicate_time == pytest.approx(6.0)
        assert jt.succeeded == []

    def test_kill_fetching_charges_migration(self):
        sim, _n, metrics, tracker, jt, job = setup()
        attempt = job.tasks[0].new_attempt(
            "node", local=False, speculative=True, now=0.0, source_node="src"
        )
        tracker.execute(attempt)
        sim.schedule(2.0, lambda: tracker.kill(attempt))
        sim.run()
        assert attempt.state is AttemptState.KILLED
        assert metrics.migration_time == pytest.approx(2.0)
        assert metrics.duplicate_time == 0.0

    def test_kill_terminal_is_noop(self):
        sim, _n, metrics, tracker, jt, job = setup()
        attempt = job.tasks[0].new_attempt("node", local=True, speculative=False, now=0.0)
        tracker.execute(attempt)
        sim.run()
        tracker.kill(attempt)  # already SUCCEEDED
        assert attempt.state is AttemptState.SUCCEEDED
