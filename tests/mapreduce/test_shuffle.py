"""Tests for the minimal shuffle/reduce extension."""

import pytest

from repro.mapreduce.shuffle import ShufflePhase, ShuffleResult
from repro.simulator.engine import Simulator
from repro.simulator.network import Network


def setup(up=100.0):
    sim = Simulator()
    net = Network(sim, uplink_bps=up)
    return sim, ShufflePhase(sim, net)


class TestShuffle:
    def test_single_reducer_colocated(self):
        sim, phase = setup()
        results = []
        phase.run(
            map_output_nodes={"t0": "r"},
            map_output_bytes=1000.0,
            reducer_nodes=["r"],
            reduce_gamma=5.0,
            on_complete=results.append,
        )
        sim.run()
        assert len(results) == 1
        r = results[0]
        assert r.elapsed == pytest.approx(5.0)  # no network needed
        assert r.transfers == 0
        assert r.local_fetches == 1

    def test_remote_fetch_then_reduce(self):
        sim, phase = setup(up=100.0)
        results = []
        phase.run(
            map_output_nodes={"t0": "m"},
            map_output_bytes=1000.0,
            reducer_nodes=["r"],
            reduce_gamma=5.0,
            on_complete=results.append,
        )
        sim.run()
        # 1000 bytes at 100 B/s = 10s fetch + 5s reduce.
        assert results[0].elapsed == pytest.approx(15.0)
        assert results[0].bytes_shuffled == pytest.approx(1000.0)

    def test_partitioning_across_reducers(self):
        sim, phase = setup(up=100.0)
        results = []
        phase.run(
            map_output_nodes={"t0": "m0", "t1": "m1"},
            map_output_bytes=1000.0,
            reducer_nodes=["r0", "r1"],
            reduce_gamma=1.0,
            on_complete=results.append,
        )
        sim.run()
        assert len(results) == 1
        # Each reducer pulls 500 bytes from each of 2 maps.
        assert results[0].transfers == 4
        assert results[0].bytes_shuffled == pytest.approx(2000.0)

    def test_validation(self):
        sim, phase = setup()
        with pytest.raises(ValueError):
            phase.run({}, 10.0, ["r"], 1.0)
        with pytest.raises(ValueError):
            phase.run({"t": "m"}, 10.0, [], 1.0)
        with pytest.raises(ValueError):
            phase.run({"t": "m"}, -1.0, ["r"], 1.0)
        with pytest.raises(ValueError):
            phase.run({"t": "m"}, 10.0, ["r"], 0.0)
