"""JobTracker behaviour on a small wired cluster with scripted failures.

These tests drive the full stack (engine + network + HDFS + MapReduce)
through ``build_cluster`` with *trace-driven* failures, so interruption
timing is exact and assertions can be sharp.
"""

import pytest

from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.core.placement import RandomPlacement
from repro.mapreduce.job import JobConf, MapJob, TaskState
from repro.runtime.cluster import ClusterConfig, build_cluster

GAMMA = 10.0
HORIZON = 100_000.0


def build(n=3, windows=None, detection="oracle", access=True, **config_kwargs):
    """A cluster of n hosts; ``windows[i]`` scripts host i's downtime."""
    hosts = [HostAvailability(host_id=f"n{i}") for i in range(n)]
    traces = [
        AvailabilityTrace(f"n{i}", HORIZON, (windows or {}).get(i, ()))
        for i in range(n)
    ]
    config = ClusterConfig(
        bandwidth_mbps=8.0,
        detection=detection,
        access_during_downtime=access,
        seed=1,
        **config_kwargs,
    )
    return build_cluster(hosts, config, traces=traces, default_gamma=GAMMA)


def ingest_and_submit(cluster, num_blocks, replication=1, conf=None):
    f = cluster.client.copy_from_local(
        "in", num_blocks=num_blocks, replication=replication, policy=RandomPlacement(), gamma=GAMMA
    )
    job = MapJob.uniform(conf or JobConf(), f, GAMMA)
    cluster.jobtracker.submit(job)
    return job


class TestFailureFree:
    def test_perfect_cluster_no_rework(self):
        # Failure-free: no rework/recovery; locality below 1 is possible
        # because stock Hadoop's idle nodes steal non-local tasks eagerly
        # (exactly the "data migration" cost the paper attributes to the
        # existing approach even without failures).
        cluster = build(n=4)
        job = ingest_and_submit(cluster, num_blocks=12)
        cluster.run_until_job_done()
        assert job.is_complete
        assert cluster.metrics.rework_time == 0.0
        assert cluster.metrics.recovery_time == 0.0
        assert cluster.metrics.data_locality >= 0.7

    def test_makespan_bounded_by_steal_tail(self):
        # Worst case: an eager steal pays one shared-uplink block fetch
        # (~2 x 67s at 8Mb/s) plus execution on top of the local work.
        cluster = build(n=4)
        job = ingest_and_submit(cluster, num_blocks=12)
        cluster.run_until_job_done()
        assert job.makespan < 250.0

    def test_single_node_serialises(self):
        cluster = build(n=1)
        job = ingest_and_submit(cluster, num_blocks=5)
        cluster.run_until_job_done()
        assert job.makespan == pytest.approx(5 * GAMMA)

    def test_all_tasks_completed_exactly_once(self):
        cluster = build(n=3)
        job = ingest_and_submit(cluster, num_blocks=9)
        cluster.run_until_job_done()
        for task in job.tasks:
            assert task.state is TaskState.COMPLETED
            assert task.completed_by is not None


class TestInterruptedExecution:
    def test_task_reruns_after_return(self):
        # One node, interrupted mid-task; the task must rerun on the same
        # node after recovery (Section II.B).
        cluster = build(n=1, windows={0: [(5.0, 8.0)]})
        job = ingest_and_submit(cluster, num_blocks=1)
        cluster.run_until_job_done()
        task = job.tasks[0]
        assert len(task.attempts) == 2
        # 5s lost + 3s down + 10s rerun = finishes at 18.
        assert job.makespan == pytest.approx(18.0)
        assert cluster.metrics.rework_time == pytest.approx(5.0)

    def test_other_node_takes_over_with_replica(self):
        # Two nodes, replication 2: when the running node dies for a long
        # time, the other node executes locally after detection.
        cluster = build(n=2, windows={0: [(5.0, 50_000.0)]})
        job = ingest_and_submit(cluster, num_blocks=2, replication=2)
        cluster.run_until_job_done()
        assert job.is_complete
        assert job.makespan < 100.0
        # All completions happened on the surviving node.
        for task in job.tasks:
            assert task.completed_by.node_id == cluster.ids.id_of("n1")

    def test_migration_when_no_local_replica(self):
        # Node 0 holds everything (node 1 down during ingest in stock HDFS
        # would get nothing; here we just use 1-replica random placement on
        # a 2-node cluster and check remote completions happen after death).
        cluster = build(n=2, windows={0: [(1.0, 50_000.0)]})
        job = ingest_and_submit(cluster, num_blocks=4)
        cluster.run_until_job_done()
        assert job.is_complete
        remote = [t for t in job.tasks if not t.completed_by.local]
        # Whatever node 0 held had to migrate to node 1.
        assert cluster.metrics.migrations >= len(remote) > 0

    def test_hard_downtime_blocks_until_return(self):
        # access_during_downtime=False and a single replica on the downed
        # node: the job cannot finish before the node returns.
        cluster = build(n=2, windows={0: [(1.0, 500.0)]}, access=False)
        f = cluster.client.copy_from_local("in", num_blocks=2, policy=RandomPlacement(), gamma=GAMMA)
        holders = {h for b in f.blocks for h in cluster.namenode.replica_holders(b.block_id)}
        job = MapJob.uniform(JobConf(), f, GAMMA)
        cluster.jobtracker.submit(job)
        cluster.run_until_job_done()
        if cluster.ids.id_of("n0") in holders:
            assert job.makespan >= 500.0
        else:
            assert job.makespan < 500.0

    def test_readable_storage_allows_early_finish(self):
        # Same scenario with access_during_downtime=True: blocks stream
        # from the down node and the job finishes long before its return.
        cluster = build(n=2, windows={0: [(1.0, 5000.0)]}, access=True)
        job = ingest_and_submit(cluster, num_blocks=2)
        cluster.run_until_job_done()
        assert job.makespan < 500.0


class TestSpeculation:
    def test_stalled_task_is_duplicated(self):
        # Node 0 dies silently mid-task (no detection in 'heartbeat' mode
        # before the timeout); node 1 should speculate and win.
        cluster = build(
            n=2,
            windows={0: [(5.0, 50_000.0)]},
            detection="heartbeat",
            heartbeat_interval=60.0,
            heartbeat_miss_threshold=10,
        )
        job = ingest_and_submit(cluster, num_blocks=2, replication=2)
        cluster.run_until_job_done()
        assert job.is_complete
        # The job must beat the 600s detection timeout via speculation.
        assert job.makespan < 600.0
        assert cluster.metrics.speculative_attempts >= 1

    def test_speculation_disabled_waits_for_detection(self):
        cluster = build(
            n=2,
            windows={0: [(5.0, 50_000.0)]},
            detection="heartbeat",
            heartbeat_interval=60.0,
            heartbeat_miss_threshold=10,
            speculation_enabled=False,
        )
        job = ingest_and_submit(cluster, num_blocks=2, replication=2)
        cluster.run_until_job_done()
        assert job.is_complete
        # Without speculation, the stalled task waits for the ~600s timeout
        # (unless node 0 held nothing; with 2 blocks x2 replicas it held both).
        assert job.makespan > 500.0

    def test_losing_duplicate_is_killed(self):
        cluster = build(n=2, windows={0: [(5.0, 120.0)]}, detection="heartbeat")
        job = ingest_and_submit(cluster, num_blocks=2, replication=2)
        cluster.run_until_job_done()
        from repro.mapreduce.job import AttemptState

        killed = [
            a for t in job.tasks for a in t.attempts if a.state is AttemptState.KILLED
        ]
        live = [a for t in job.tasks for a in t.attempts if a.is_live]
        assert not live  # nothing left running after completion


class TestAccountingConservation:
    @pytest.mark.parametrize("windows", [None, {0: [(3.0, 9.0), (30.0, 38.0)]}])
    def test_slot_time_conservation(self, windows):
        cluster = build(n=3, windows=windows)
        job = ingest_and_submit(cluster, num_blocks=9)
        cluster.run_until_job_done()
        breakdown = cluster.metrics.breakdown(job.makespan, slots=cluster.total_slots)
        # The residual is scheduling slack absorbed into misc; it must be a
        # tiny fraction of total slot time.
        assert abs(breakdown.conservation_residual()) < 0.05 * breakdown.slot_time + 1.0

    def test_recovery_equals_down_overlap(self):
        cluster = build(n=2, windows={0: [(2.0, 12.0)]})
        job = ingest_and_submit(cluster, num_blocks=4)
        cluster.run_until_job_done()
        overlap = min(job.makespan, 12.0) - 2.0
        assert cluster.metrics.recovery_time == pytest.approx(overlap, abs=1e-6)


class TestDeterminism:
    def test_identical_runs(self):
        def run():
            cluster = build(n=4, windows={1: [(7.0, 15.0)], 2: [(20.0, 29.0)]})
            job = ingest_and_submit(cluster, num_blocks=16)
            cluster.run_until_job_done()
            return (
                job.makespan,
                cluster.metrics.data_locality,
                cluster.metrics.migration_time,
            )

        assert run() == run()

    def test_submit_twice_rejected(self):
        cluster = build(n=2)
        job = ingest_and_submit(cluster, num_blocks=2)
        f2 = cluster.client.copy_from_local("in2", num_blocks=2, policy=RandomPlacement(), gamma=GAMMA)
        job2 = MapJob.uniform(JobConf(), f2, GAMMA)
        with pytest.raises(RuntimeError, match="already running"):
            cluster.jobtracker.submit(job2)
