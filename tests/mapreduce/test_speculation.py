"""Tests for the speculation policy."""

import pytest

from repro.hdfs.blocks import Block
from repro.mapreduce.job import AttemptState, MapTask
from repro.mapreduce.speculation import SpeculationPolicy


def make_task(gamma=10.0):
    block = Block(block_id="b0", file_name="f", index=0, size_bytes=1024)
    return MapTask(task_id="t0", block=block, gamma=gamma)


class TestEligibility:
    def test_disabled_never_straggles(self):
        policy = SpeculationPolicy(enabled=False)
        task = make_task()
        assert not policy.is_straggling(task, now=1e9)

    def test_stalled_task_is_straggler(self):
        # An attempt died with its node; no live attempts -> straggler.
        policy = SpeculationPolicy()
        task = make_task()
        attempt = task.new_attempt("n0", local=True, speculative=False, now=0.0)
        attempt.retire(AttemptState.FAILED, now=3.0)
        assert policy.is_straggling(task, now=4.0)

    def test_fresh_attempt_not_straggler(self):
        policy = SpeculationPolicy(slowdown=2.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        assert not policy.is_straggling(task, now=15.0)  # 15 < 2*10

    def test_slow_attempt_is_straggler(self):
        policy = SpeculationPolicy(slowdown=2.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        assert policy.is_straggling(task, now=21.0)

    def test_remote_threshold_includes_fetch(self):
        policy = SpeculationPolicy(slowdown=2.0, nominal_fetch_seconds=50.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=False, speculative=False, now=0.0, source_node="s")
        # Expected duration 60s -> threshold 120s.
        assert not policy.is_straggling(task, now=100.0)
        assert policy.is_straggling(task, now=121.0)

    def test_completed_task_never_straggles(self):
        policy = SpeculationPolicy()
        task = make_task()
        from repro.mapreduce.job import TaskState

        task.state = TaskState.COMPLETED
        assert not policy.is_straggling(task, now=1e9)


class TestMaySpeculate:
    def test_cap_respected(self):
        policy = SpeculationPolicy(slowdown=2.0, max_per_task=1)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        task.new_attempt("n1", local=True, speculative=True, now=0.0)
        assert not policy.may_speculate(task, "n2", now=50.0)

    def test_same_node_rejected(self):
        policy = SpeculationPolicy(slowdown=2.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        assert not policy.may_speculate(task, "n0", now=50.0)
        assert policy.may_speculate(task, "n1", now=50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(slowdown=0.5)
        with pytest.raises(ValueError):
            SpeculationPolicy(max_per_task=-1)
        with pytest.raises(ValueError):
            SpeculationPolicy(nominal_fetch_seconds=-1.0)
