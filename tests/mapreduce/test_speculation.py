"""Tests for the speculation policy."""

import pytest

from repro.hdfs.blocks import Block
from repro.mapreduce.job import AttemptState, MapTask
from repro.mapreduce.speculation import SpeculationPolicy


def make_task(gamma=10.0):
    block = Block(block_id="b0", file_name="f", index=0, size_bytes=1024)
    return MapTask(task_id="t0", block=block, gamma=gamma)


class TestEligibility:
    def test_disabled_never_straggles(self):
        policy = SpeculationPolicy(enabled=False)
        task = make_task()
        assert not policy.is_straggling(task, now=1e9)

    def test_stalled_task_is_straggler(self):
        # An attempt died with its node; no live attempts -> straggler.
        policy = SpeculationPolicy()
        task = make_task()
        attempt = task.new_attempt("n0", local=True, speculative=False, now=0.0)
        attempt.retire(AttemptState.FAILED, now=3.0)
        assert policy.is_straggling(task, now=4.0)

    def test_fresh_attempt_not_straggler(self):
        policy = SpeculationPolicy(slowdown=2.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        assert not policy.is_straggling(task, now=15.0)  # 15 < 2*10

    def test_slow_attempt_is_straggler(self):
        policy = SpeculationPolicy(slowdown=2.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        assert policy.is_straggling(task, now=21.0)

    def test_remote_threshold_includes_fetch(self):
        policy = SpeculationPolicy(slowdown=2.0, nominal_fetch_seconds=50.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=False, speculative=False, now=0.0, source_node="s")
        # Expected duration 60s -> threshold 120s.
        assert not policy.is_straggling(task, now=100.0)
        assert policy.is_straggling(task, now=121.0)

    def test_completed_task_never_straggles(self):
        policy = SpeculationPolicy()
        task = make_task()
        from repro.mapreduce.job import TaskState

        task.state = TaskState.COMPLETED
        assert not policy.is_straggling(task, now=1e9)


class TestMaySpeculate:
    def test_cap_respected(self):
        policy = SpeculationPolicy(slowdown=2.0, max_per_task=1)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        task.new_attempt("n1", local=True, speculative=True, now=0.0)
        assert not policy.may_speculate(task, "n2", now=50.0)

    def test_same_node_rejected(self):
        policy = SpeculationPolicy(slowdown=2.0)
        task = make_task(gamma=10.0)
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        assert not policy.may_speculate(task, "n0", now=50.0)
        assert policy.may_speculate(task, "n1", now=50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(slowdown=0.5)
        with pytest.raises(ValueError):
            SpeculationPolicy(max_per_task=-1)
        with pytest.raises(ValueError):
            SpeculationPolicy(nominal_fetch_seconds=-1.0)
        with pytest.raises(ValueError):
            SpeculationPolicy(fetch_rate_bps=-1.0)


class TestFetchRate:
    def test_fetch_seconds_from_rate(self):
        # 1024-byte block at 64 B/s -> 16s nominal fetch.
        policy = SpeculationPolicy(fetch_rate_bps=64.0)
        task = make_task(gamma=10.0)
        assert policy.fetch_seconds(task) == pytest.approx(16.0)
        assert policy.expected_duration(task, remote=True) == pytest.approx(26.0)
        assert policy.expected_duration(task, remote=False) == pytest.approx(10.0)

    def test_nominal_seconds_take_precedence(self):
        policy = SpeculationPolicy(nominal_fetch_seconds=50.0, fetch_rate_bps=64.0)
        assert policy.fetch_seconds(make_task()) == pytest.approx(50.0)

    def test_remote_under_contention_is_not_spurious_straggler(self):
        # Regression: with nominal_fetch_seconds=0 and no fetch rate, a
        # remote attempt used to be held to the local threshold, so any
        # fetch slower than (slowdown-1)*gamma looked like a straggler and
        # triggered a duplicate. Deriving the fetch term from the block
        # size and link rate fixes the threshold.
        task = make_task(gamma=10.0)  # 1024-byte block
        task.new_attempt("n0", local=False, speculative=False, now=0.0, source_node="s")
        # Contended fetch still in flight at t=30 (3x gamma).
        buggy = SpeculationPolicy(slowdown=2.0)  # both fetch knobs zero
        assert buggy.is_straggling(task, now=30.0)  # the old false positive
        fixed = SpeculationPolicy(slowdown=2.0, fetch_rate_bps=1024.0 / 50.0)
        # Expected duration 10 + 50 = 60s -> threshold 120s.
        assert not fixed.is_straggling(task, now=30.0)
        assert fixed.is_straggling(task, now=121.0)  # genuinely slow still flagged


class TestJobTrackerDefault:
    def test_default_policy_derives_fetch_rate_from_network(self):
        # A JobTracker built without an explicit policy must not fall back
        # to the zero-fetch-term default; it derives the rate from the
        # network it schedules over.
        from repro.hdfs.namenode import NameNode
        from repro.mapreduce.jobtracker import JobTracker
        from repro.simulator.engine import Simulator
        from repro.simulator.metrics import MapPhaseMetrics
        from repro.simulator.network import Network

        sim = Simulator()
        network = Network(sim, uplink_bps=1000.0, downlink_bps=500.0)
        tracker = JobTracker(sim, NameNode(), network, {}, MapPhaseMetrics())
        policy = tracker._speculation
        assert policy.fetch_rate_bps == pytest.approx(500.0)
        assert policy.fetch_seconds(make_task()) == pytest.approx(1024.0 / 500.0)
