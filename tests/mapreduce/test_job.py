"""Tests for job/task/attempt state machines."""

import pytest

from repro.hdfs.blocks import DfsFile
from repro.mapreduce.job import AttemptState, JobConf, MapJob, MapTask, TaskState


def make_job(num_blocks=4, gamma=10.0, **conf_kwargs):
    f = DfsFile.build("in", num_blocks, 1024, 1)
    return MapJob.uniform(JobConf(**conf_kwargs), f, gamma)


class TestJobConf:
    def test_defaults(self):
        conf = JobConf()
        assert conf.speculative
        assert conf.scheduler == "locality"

    def test_validation(self):
        with pytest.raises(ValueError):
            JobConf(speculative_slowdown=1.0)
        with pytest.raises(ValueError):
            JobConf(max_speculative_per_task=-1)


class TestMapJob:
    def test_one_task_per_block(self):
        job = make_job(7)
        assert job.num_tasks == 7
        ids = {t.task_id for t in job.tasks}
        assert len(ids) == 7

    def test_base_work(self):
        job = make_job(5, gamma=12.0)
        assert job.total_base_work == pytest.approx(60.0)

    def test_gamma_count_mismatch(self):
        f = DfsFile.build("in", 3, 1024, 1)
        with pytest.raises(ValueError, match="one gamma per block"):
            MapJob(JobConf(), f, [1.0, 2.0])

    def test_makespan_requires_completion(self):
        job = make_job()
        with pytest.raises(ValueError):
            _ = job.makespan
        job.submitted_at = 0.0
        job.finished_at = 55.0
        assert job.makespan == 55.0

    def test_completion_tracking(self):
        job = make_job(2)
        assert not job.is_complete
        for task in job.tasks:
            task.state = TaskState.COMPLETED
        assert job.is_complete
        assert job.completed_count == 2

    def test_task_lookup(self):
        job = make_job(2)
        t = job.tasks[0]
        assert job.task(t.task_id) is t


class TestAttemptLifecycle:
    def test_new_attempt_is_live(self):
        job = make_job(1)
        task = job.tasks[0]
        attempt = task.new_attempt("n0", local=True, speculative=False, now=0.0)
        assert attempt.is_live
        assert task.has_live_attempt()
        assert task.live_attempts() == [attempt]

    def test_retire_removes_from_live(self):
        job = make_job(1)
        task = job.tasks[0]
        attempt = task.new_attempt("n0", local=True, speculative=False, now=0.0)
        attempt.retire(AttemptState.FAILED, now=5.0)
        assert not attempt.is_live
        assert not task.has_live_attempt()
        assert attempt.finished_at == 5.0

    def test_retire_to_live_state_rejected(self):
        job = make_job(1)
        task = job.tasks[0]
        attempt = task.new_attempt("n0", local=True, speculative=False, now=0.0)
        with pytest.raises(ValueError):
            attempt.retire(AttemptState.RUNNING, now=1.0)

    def test_speculative_count(self):
        job = make_job(1)
        task = job.tasks[0]
        task.new_attempt("n0", local=True, speculative=False, now=0.0)
        spec = task.new_attempt("n1", local=False, speculative=True, now=1.0, source_node="n0")
        assert task.speculative_count() == 1
        spec.retire(AttemptState.KILLED, now=2.0)
        assert task.speculative_count() == 0

    def test_attempt_ids_unique(self):
        job = make_job(1)
        task = job.tasks[0]
        a1 = task.new_attempt("n0", local=True, speculative=False, now=0.0)
        a2 = task.new_attempt("n1", local=True, speculative=False, now=0.0)
        assert a1.attempt_id != a2.attempt_id

    def test_elapsed(self):
        job = make_job(1)
        attempt = job.tasks[0].new_attempt("n0", local=True, speculative=False, now=3.0)
        assert attempt.elapsed(10.0) == 7.0
