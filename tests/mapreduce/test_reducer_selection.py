"""Tests for availability-aware reducer selection (reduce-phase extension)."""

import pytest

from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import NodeView
from repro.mapreduce.shuffle import select_reducer_nodes
from repro.util.rng import RandomSource


def view(node_id, availability, up=True):
    # availability a -> pick (lambda, mu) with mtbi/(mtbi+mu) = a.
    mtbi = 100.0
    mu = mtbi * (1.0 - availability) / availability if availability < 1.0 else 0.0
    rate = 1.0 / mtbi if mu > 0 else 0.0
    return NodeView(
        node_id=node_id,
        estimate=AvailabilityEstimate(arrival_rate=rate, recovery_mean=mu, observations=1),
        is_up=up,
    )


class TestAvailabilityAware:
    def test_picks_most_dependable(self):
        views = [view("bad", 0.5), view("good", 0.99), view("ok", 0.8)]
        chosen = select_reducer_nodes(views, 2, RandomSource(1))
        assert chosen == ["good", "ok"]

    def test_deterministic_tiebreak(self):
        views = [view(f"n{i}", 0.9) for i in range(5)]
        a = select_reducer_nodes(views, 3, RandomSource(1))
        b = select_reducer_nodes(views, 3, RandomSource(2))
        assert a == b == ["n0", "n1", "n2"]

    def test_down_nodes_excluded(self):
        views = [view("up", 0.5), view("down", 0.99, up=False), view("up2", 0.7)]
        chosen = select_reducer_nodes(views, 2, RandomSource(1))
        assert "down" not in chosen


class TestRandomBaseline:
    def test_uniform_selection(self):
        views = [view(f"n{i}", 0.9) for i in range(10)]
        seen = set()
        for seed in range(30):
            seen.update(
                select_reducer_nodes(views, 2, RandomSource(seed), availability_aware=False)
            )
        assert len(seen) > 6  # spreads across the population

    def test_distinct(self):
        views = [view(f"n{i}", 0.9) for i in range(4)]
        chosen = select_reducer_nodes(views, 3, RandomSource(3), availability_aware=False)
        assert len(set(chosen)) == 3


class TestValidation:
    def test_count_bounds(self):
        views = [view("a", 0.9)]
        with pytest.raises(ValueError):
            select_reducer_nodes(views, 0, RandomSource(1))
        with pytest.raises(ValueError):
            select_reducer_nodes(views, 2, RandomSource(1))
