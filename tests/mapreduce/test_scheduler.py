"""Tests for the task-assignment schedulers."""

from typing import Dict, List, Sequence

import pytest

from repro.hdfs.blocks import Block
from repro.mapreduce.job import MapTask, TaskState
from repro.mapreduce.scheduler import (
    AvailabilityAwareScheduler,
    LocalityFirstScheduler,
    SchedulerContext,
    make_scheduler,
)


class FakeContext(SchedulerContext):
    """Scheduler context backed by plain dicts."""

    def __init__(self, holders: Dict[str, List[str]], readable=None, unavailability=None):
        self._holders = holders
        self._readable = readable if readable is not None else holders
        self._unavail = unavailability or {}

    def is_assignable(self, task: MapTask) -> bool:
        return task.state is TaskState.PENDING

    def holders(self, task: MapTask) -> Sequence[str]:
        return self._holders[task.task_id]

    def readable_holders(self, task: MapTask) -> Sequence[str]:
        return self._readable.get(task.task_id, [])

    def choose_source(self, task: MapTask, sources: Sequence[str]) -> str:
        return sorted(sources)[0]

    def holder_unavailability(self, node_id: str) -> float:
        return self._unavail.get(node_id, 0.0)


def make_task(i, gamma=10.0):
    block = Block(block_id=f"b{i}", file_name="f", index=i, size_bytes=1024)
    return MapTask(task_id=f"t{i}", block=block, gamma=gamma)


class TestLocalityFirst:
    def test_prefers_local(self):
        sched = LocalityFirstScheduler()
        t0, t1 = make_task(0), make_task(1)
        ctx = FakeContext({"t0": ["A"], "t1": ["B"]})
        sched.enqueue(t0, ["A"])
        sched.enqueue(t1, ["B"])
        task, source = sched.pick("A", ctx)
        assert task is t0
        assert source is None

    def test_steals_remote_when_no_local(self):
        sched = LocalityFirstScheduler()
        t0 = make_task(0)
        ctx = FakeContext({"t0": ["B"]})
        sched.enqueue(t0, ["B"])
        task, source = sched.pick("A", ctx)
        assert task is t0
        assert source == "B"

    def test_skips_running_tasks(self):
        sched = LocalityFirstScheduler()
        t0, t1 = make_task(0), make_task(1)
        ctx = FakeContext({"t0": ["A"], "t1": ["A"]})
        sched.enqueue(t0, ["A"])
        sched.enqueue(t1, ["A"])
        t0.state = TaskState.RUNNING  # stale entry
        task, _ = sched.pick("A", ctx)
        assert task is t1

    def test_global_pop_detects_locality(self):
        # A task popped from the global queue that happens to be local to
        # the asking node must be returned as local.
        sched = LocalityFirstScheduler()
        t0 = make_task(0)
        ctx = FakeContext({"t0": ["A", "B"]})
        sched.enqueue(t0, ["B"])  # local queue only knows B
        task, source = sched.pick("A", ctx)
        assert task is t0
        assert source is None

    def test_blocked_tasks_parked_and_released(self):
        sched = LocalityFirstScheduler()
        t0 = make_task(0)
        ctx = FakeContext({"t0": ["B"]}, readable={"t0": []})
        sched.enqueue(t0, ["B"])
        assert sched.pick("A", ctx) is None
        assert sched.pending_hint() == 1  # parked, not lost
        released = sched.on_node_returned("B")
        assert released == 1
        ctx2 = FakeContext({"t0": ["B"]})
        task, source = sched.pick("A", ctx2)
        assert task is t0
        assert source == "B"

    def test_fifo_order_for_steals(self):
        sched = LocalityFirstScheduler()
        tasks = [make_task(i) for i in range(3)]
        ctx = FakeContext({t.task_id: ["B"] for t in tasks})
        for t in tasks:
            sched.enqueue(t, ["B"])
        picked, _ = sched.pick("A", ctx)
        assert picked is tasks[0]

    def test_empty(self):
        sched = LocalityFirstScheduler()
        ctx = FakeContext({})
        assert sched.pick("A", ctx) is None


class TestAvailabilityAware:
    def test_steals_from_least_available_holder_first(self):
        sched = AvailabilityAwareScheduler(scan_window=8)
        good_task, bad_task = make_task(0), make_task(1)
        ctx = FakeContext(
            {"t0": ["GOOD"], "t1": ["BAD"]},
            unavailability={"GOOD": 0.05, "BAD": 0.9},
        )
        sched.enqueue(good_task, ["GOOD"])
        sched.enqueue(bad_task, ["BAD"])
        task, source = sched.pick("A", ctx)
        assert task is bad_task
        assert source == "BAD"

    def test_unpicked_candidates_stay_pending(self):
        sched = AvailabilityAwareScheduler(scan_window=8)
        t0, t1 = make_task(0), make_task(1)
        ctx = FakeContext(
            {"t0": ["G"], "t1": ["B"]}, unavailability={"G": 0.0, "B": 1.0}
        )
        sched.enqueue(t0, ["G"])
        sched.enqueue(t1, ["B"])
        first, _ = sched.pick("A", ctx)
        assert first is t1
        first.state = TaskState.RUNNING
        second, _ = sched.pick("A", ctx)
        assert second is t0

    def test_local_still_first(self):
        sched = AvailabilityAwareScheduler()
        t0, t1 = make_task(0), make_task(1)
        ctx = FakeContext(
            {"t0": ["A"], "t1": ["B"]}, unavailability={"A": 0.0, "B": 1.0}
        )
        sched.enqueue(t0, ["A"])
        sched.enqueue(t1, ["B"])
        task, source = sched.pick("A", ctx)
        assert task is t0
        assert source is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            AvailabilityAwareScheduler(scan_window=0)


class TestFactory:
    def test_known(self):
        assert isinstance(make_scheduler("locality"), LocalityFirstScheduler)
        assert isinstance(make_scheduler("availability"), AvailabilityAwareScheduler)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("zoo")
