"""Tests for the re-replication monitor: healing, priority, backoff, GC."""

import pytest

from repro.core.placement import RandomPlacement
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.replication_monitor import ReplicationMonitor
from repro.simulator.engine import Simulator
from repro.simulator.network import Network
from repro.util.rng import RandomSource

GAMMA = 10.0
SIZE = 1000.0  # bytes; at 100 B/s an uncontended copy takes 10 s


def setup(nodes=4, blocks=4, replication=2, **kw):
    sim = Simulator()
    nn = NameNode()
    for i in range(nodes):
        nn.register_datanode(DataNode(f"n{i}"))
    net = Network(sim, uplink_bps=100.0)
    mon = ReplicationMonitor(sim, nn, net, **kw)
    f = nn.create_file("f", blocks, SIZE, replication, RandomPlacement(), GAMMA, RandomSource(7))
    return sim, nn, net, mon, f


def relocate(nn, block_id, holders):
    """Force a block's replica set to exactly ``holders``."""
    current = set(nn.replica_holders(block_id))
    for h in holders:
        if h not in current:
            nn.add_replica(block_id, h)
    for h in sorted(current - set(holders)):
        nn.remove_replica(block_id, h)


def live_physical(nn, block_id):
    return [
        h
        for h in nn.replica_holders(block_id)
        if nn.is_live(h) and nn.datanode(h).has_block(block_id)
    ]


class TestHealing:
    def test_dead_node_blocks_healed_to_target(self):
        sim, nn, net, mon, f = setup()
        on_n0 = nn.located_on("n0")
        assert on_n0, "seed must place something on n0"
        nn.mark_dead("n0")
        mon.on_node_dead("n0", 0.0)
        sim.run()
        assert nn.under_replicated() == {}
        for block in f.blocks:
            assert len(live_physical(nn, block.block_id)) == 2
        assert mon.metrics.rereplications_completed == len(on_n0)
        assert mon.metrics.rereplication_bytes == pytest.approx(SIZE * len(on_n0))
        assert mon.is_idle()

    def test_replica_callback_fires_per_landed_copy(self):
        landed = []
        sim, nn, net, mon, f = setup(
            on_replica_added=lambda b, n: landed.append((b, n))
        )
        nn.mark_dead("n0")
        mon.on_node_dead("n0", 0.0)
        sim.run()
        assert sorted(b for b, _n in landed) == nn.located_on("n0")
        for block_id, node_id in landed:
            assert nn.datanode(node_id).has_block(block_id)

    def test_lowest_live_count_jumps_the_queue(self):
        sim, nn, net, mon, f = setup(blocks=2, replication=3, max_concurrent=1)
        b0, b1 = (block.block_id for block in f.blocks)
        relocate(nn, b0, {"n0", "n1"})  # live 2 of 3
        relocate(nn, b1, {"n0"})        # live 1 of 3: more urgent
        mon.on_node_dead("n0", 0.0)  # n0 alive: just (re)considers its blocks
        assert mon.inflight_count == 1
        (active,) = net.active_transfers
        assert active.label == f"rereplicate:{b1}"


class TestMidCopyFailure:
    def one_block_on_n0(self, **kw):
        """Start a heal of the sole replica on n0, killing n0 mid-copy at t=4."""
        sim, nn, net, mon, f = setup(blocks=1, replication=2, **kw)
        block_id = f.blocks[0].block_id
        relocate(nn, block_id, {"n0"})
        mon.on_node_dead("n0", 0.0)
        assert mon.inflight_count == 1

        def die():
            nn.mark_dead("n0")
            net.cancel_involving("n0")
            mon.on_node_dead("n0", sim.now)

        sim.schedule(4.0, die)
        return sim, nn, net, mon, block_id

    def test_source_death_backs_off_then_recovers(self):
        sim, nn, net, mon, block_id = self.one_block_on_n0(backoff_base=5.0)
        sim.run(until=100.0)
        assert mon.metrics.rereplication_failures == 1
        assert mon.metrics.rereplication_retries == 1
        # The backoff retry found no live source and parked the block.
        assert mon.metrics.rereplications_completed == 0
        assert mon.is_idle()
        # The holder's return re-queues it and the heal completes.
        nn.mark_alive("n0")
        mon.on_node_returned("n0", 100.0)
        sim.run()
        assert mon.metrics.rereplications_completed == 1
        assert len(live_physical(nn, block_id)) == 2

    def test_retry_budget_exhaustion_abandons(self):
        sim, nn, net, mon, block_id = self.one_block_on_n0(retry_budget=0)
        sim.run(until=100.0)
        assert mon.metrics.rereplication_abandoned == 1
        assert mon.metrics.rereplication_retries == 0
        assert mon.is_idle()

    def test_partial_traffic_of_failed_copy_counted(self):
        sim, nn, net, mon, block_id = self.one_block_on_n0()
        sim.run(until=4.0)
        assert mon.metrics.rereplication_bytes == pytest.approx(400.0)


class TestHolderReturn:
    def setup_shared_block(self):
        sim, nn, net, mon, f = setup(blocks=1, replication=2)
        block_id = f.blocks[0].block_id
        relocate(nn, block_id, {"n0", "n1"})
        nn.mark_dead("n0")
        mon.on_node_dead("n0", 0.0)
        assert mon.inflight_count == 1
        return sim, nn, net, mon, block_id

    def test_return_cancels_moot_inflight_copy(self):
        sim, nn, net, mon, block_id = self.setup_shared_block()

        def back():
            nn.mark_alive("n0")
            mon.on_node_returned("n0", sim.now)

        sim.schedule(2.0, back)
        sim.run(until=2.0)
        assert mon.inflight_count == 0
        assert net.active_transfers == []
        # Our own cancellation is not a copy failure, but the partial
        # traffic was still spent.
        assert mon.metrics.rereplication_failures == 0
        assert mon.metrics.rereplication_bytes == pytest.approx(200.0)
        assert nn.replica_holders(block_id) == {"n0", "n1"}
        assert mon.is_idle()

    def test_return_garbage_collects_stale_copy(self):
        sim, nn, net, mon, block_id = self.setup_shared_block()
        sim.run()  # heal completes while n0 is away
        assert len(nn.replica_holders(block_id)) == 3
        nn.mark_alive("n0")
        mon.on_node_returned("n0", sim.now)
        # The returner's copy is the stale one: dropped first.
        assert "n0" not in nn.replica_holders(block_id)
        assert len(nn.replica_holders(block_id)) == 2
        assert mon.metrics.overreplicated_removed == 1


class TestPermanentLoss:
    def test_purge_records_loss_and_heals_the_rest(self):
        purged = []
        sim, nn, net, mon, f = setup(
            blocks=2,
            replication=2,
            is_permanent=lambda n: n == "n0",
            on_node_purged=purged.append,
        )
        b0, b1 = (block.block_id for block in f.blocks)
        relocate(nn, b0, {"n0", "n1"})
        relocate(nn, b1, {"n0"})  # sole replica: unrecoverable
        nn.mark_dead("n0")
        mon.on_node_dead("n0", 0.0)
        assert purged == ["n0"]
        assert nn.replica_holders(b1) == set()
        assert mon.metrics.blocks_lost == 1
        sim.run()
        assert len(live_physical(nn, b0)) == 2


class TestTeardown:
    def test_stop_cancels_queue_retries_and_copies(self):
        sim, nn, net, mon, f = setup(max_concurrent=1)
        nn.mark_dead("n0")
        mon.on_node_dead("n0", 0.0)
        assert mon.inflight_count == 1
        mon.stop()
        assert net.active_transfers == []
        assert mon.is_idle()
        sim.run()
        assert mon.metrics.rereplications_completed == 0
        # A stopped monitor ignores further signals.
        mon.on_node_dead("n1", 0.0)
        assert mon.is_idle()
