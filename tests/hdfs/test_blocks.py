"""Tests for the HDFS data model."""

import pytest

from repro.hdfs.blocks import Block, DfsFile
from repro.util.units import MB


class TestBlock:
    def test_basic(self):
        b = Block(block_id="f#blk0", file_name="f", index=0, size_bytes=64 * MB)
        assert b.size_bytes == 64 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            Block(block_id="x", file_name="f", index=-1, size_bytes=1)
        with pytest.raises(ValueError):
            Block(block_id="x", file_name="f", index=0, size_bytes=0)


class TestDfsFile:
    def test_build(self):
        f = DfsFile.build("data", num_blocks=5, block_size=64 * MB, replication=2)
        assert f.num_blocks == 5
        assert f.size_bytes == 5 * 64 * MB
        assert len({b.block_id for b in f.blocks}) == 5
        assert [b.index for b in f.blocks] == list(range(5))

    def test_block_ids_scoped_to_file(self):
        f1 = DfsFile.build("a", 2, 1024, 1)
        f2 = DfsFile.build("b", 2, 1024, 1)
        assert not {b.block_id for b in f1.blocks} & {b.block_id for b in f2.blocks}

    def test_validation(self):
        with pytest.raises(ValueError):
            DfsFile.build("f", 0, 1024, 1)
        with pytest.raises(ValueError):
            DfsFile.build("f", 1, 1024, 0)
        with pytest.raises(ValueError):
            DfsFile(name="f", block_size=10, replication=1, blocks=[])
