"""Tests for the heartbeat service: detection lag and predictor feeding."""

import pytest

from repro.hdfs.datanode import DataNode
from repro.hdfs.heartbeat import HeartbeatService
from repro.hdfs.namenode import NameNode
from repro.simulator.engine import Simulator


def setup(interval=3.0, misses=3, nodes=1):
    sim = Simulator()
    nn = NameNode()
    for i in range(nodes):
        nn.register_datanode(DataNode(f"n{i}"))
    hb = HeartbeatService(sim, nn, interval=interval, miss_threshold=misses)
    for i in range(nodes):
        hb.track(f"n{i}")
    return sim, nn, hb


class TestLiveness:
    def test_live_node_stays_live(self):
        sim, nn, hb = setup()
        sim.run(until=100.0)
        assert nn.is_live("n0")

    def test_dead_after_timeout(self):
        sim, nn, hb = setup()
        deaths = []
        hb.subscribe(on_dead=lambda n, t: deaths.append((n, t)))
        sim.schedule(10.0, lambda: hb.node_down("n0", 10.0))
        sim.run(until=100.0)
        assert not nn.is_live("n0")
        assert len(deaths) == 1
        # Death detected within one timeout of the last beat (~9 + 9s).
        assert deaths[0][1] <= 10.0 + 2 * hb.timeout

    def test_return_detected_on_first_beat(self):
        sim, nn, hb = setup()
        returns = []
        hb.subscribe(on_returned=lambda n, t: returns.append((n, t)))
        sim.schedule(10.0, lambda: hb.node_down("n0", 10.0))
        sim.schedule(50.0, lambda: hb.node_up("n0", 50.0))
        sim.run(until=100.0)
        assert nn.is_live("n0")
        assert len(returns) == 1
        assert returns[0][1] == pytest.approx(50.0)

    def test_short_blip_not_detected(self):
        # Down for less than the timeout: the NameNode never notices.
        sim, nn, hb = setup(interval=3.0, misses=3)
        deaths = []
        hb.subscribe(on_dead=lambda n, t: deaths.append(n))
        sim.schedule(10.0, lambda: hb.node_down("n0", 10.0))
        sim.schedule(13.0, lambda: hb.node_up("n0", 13.0))
        sim.run(until=100.0)
        assert deaths == []
        assert nn.is_live("n0")


class TestPredictorFeeding:
    def test_uptime_observed(self):
        sim, nn, hb = setup()
        sim.run(until=31.0)
        est = nn.predictor.estimate("n0")
        # ~30s of uptime observed through beats.
        assert nn.predictor._estimators["n0"].observed_uptime == pytest.approx(30.0, abs=4.0)

    def test_downtime_observed_on_return(self):
        sim, nn, hb = setup()
        sim.schedule(9.0, lambda: hb.node_down("n0", 9.0))
        sim.schedule(29.0, lambda: hb.node_up("n0", 29.0))
        sim.run(until=60.0)
        estimator = nn.predictor._estimators["n0"]
        assert estimator.observed_episodes == 1

    def test_double_track_rejected(self):
        sim, nn, hb = setup()
        with pytest.raises(ValueError, match="already tracked"):
            hb.track("n0")


class TestConfigValidation:
    def test_timeout_property(self):
        sim, nn, hb = setup(interval=2.0, misses=5)
        assert hb.timeout == 10.0

    def test_invalid_params(self):
        sim = Simulator()
        nn = NameNode()
        with pytest.raises(ValueError):
            HeartbeatService(sim, nn, interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatService(sim, nn, miss_threshold=0)


class TestTeardown:
    def test_untrack_disarms_beats_and_watchdog(self):
        sim, nn, hb = setup()
        hb.untrack("n0")
        assert not hb.is_tracked("n0")
        assert hb.tracked_nodes == []
        fired = sim.run(until=1000.0)
        assert fired == 0, "no beat or watchdog may fire after untrack"

    def test_untrack_is_idempotent_and_ignores_unknown(self):
        sim, nn, hb = setup()
        hb.untrack("n0")
        hb.untrack("n0")
        hb.untrack("ghost")
        assert hb.tracked_nodes == []

    def test_untracked_node_never_declared_dead(self):
        # A permanently-failed node is untracked at purge time: its silence
        # must not keep firing the watchdog forever.
        sim, nn, hb = setup()
        deaths = []
        hb.subscribe(on_dead=lambda n, t: deaths.append(n))
        sim.schedule(10.0, lambda: hb.node_down("n0", 10.0))
        sim.schedule(11.0, lambda: hb.untrack("n0"))
        sim.run(until=1000.0)
        assert deaths == []

    def test_stop_untracks_every_node(self):
        sim, nn, hb = setup(nodes=3)
        sim.run(until=10.0)
        hb.stop()
        assert hb.tracked_nodes == []
        assert sim.run(until=1000.0) == 0

    def test_retrack_after_untrack(self):
        sim, nn, hb = setup()
        hb.untrack("n0")
        hb.track("n0")
        assert hb.is_tracked("n0")
        sim.run(until=50.0)
        assert nn.is_live("n0")
