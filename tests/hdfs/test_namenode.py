"""Tests for the NameNode: namespace, locations, liveness, placement."""

import pytest

from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import AdaptPlacement, RandomPlacement
from repro.core.predictor import PerformancePredictor
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.util.rng import RandomSource

GAMMA = 12.0


def make_namenode(n=4, **kwargs):
    nn = NameNode(**kwargs)
    for i in range(n):
        nn.register_datanode(DataNode(f"n{i}"))
    return nn


class TestMembership:
    def test_register(self):
        nn = make_namenode(3)
        assert nn.datanode_ids == ["n0", "n1", "n2"]

    def test_duplicate_rejected(self):
        nn = make_namenode(1)
        with pytest.raises(ValueError, match="already registered"):
            nn.register_datanode(DataNode("n0"))

    def test_predictor_auto_registered(self):
        nn = make_namenode(2)
        assert nn.predictor.node_ids == ["n0", "n1"]

    def test_liveness(self):
        nn = make_namenode(2)
        nn.mark_dead("n0")
        assert not nn.is_live("n0")
        assert nn.live_nodes() == ["n1"]
        nn.mark_alive("n0")
        assert nn.is_live("n0")

    def test_unknown_node(self):
        nn = make_namenode(1)
        with pytest.raises(KeyError):
            nn.mark_dead("ghost")


class TestFileLifecycle:
    def test_create_places_all_replicas(self):
        nn = make_namenode(5)
        f = nn.create_file("f", 10, 1024, 2, RandomPlacement(), GAMMA, RandomSource(1))
        assert f.num_blocks == 10
        for b in f.blocks:
            holders = nn.replica_holders(b.block_id)
            assert len(holders) == 2
            for node_id in holders:
                assert nn.datanode(node_id).has_block(b.block_id)

    def test_duplicate_file_rejected(self):
        nn = make_namenode(2)
        nn.create_file("f", 1, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        with pytest.raises(ValueError, match="already exists"):
            nn.create_file("f", 1, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))

    def test_delete_removes_everything(self):
        nn = make_namenode(3)
        f = nn.create_file("f", 6, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        nn.delete_file("f")
        assert nn.file_names == []
        for dn_id in nn.datanode_ids:
            assert nn.datanode(dn_id).block_count == 0
        with pytest.raises(KeyError):
            nn.replica_holders(f.blocks[0].block_id)

    def test_missing_file(self):
        nn = make_namenode(1)
        with pytest.raises(KeyError):
            nn.file("nope")

    def test_block_distribution(self):
        nn = make_namenode(4)
        nn.create_file("f", 20, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        dist = nn.block_distribution("f")
        assert sum(dist.values()) == 20

    def test_replica_map(self):
        nn = make_namenode(3)
        f = nn.create_file("f", 4, 10, 2, RandomPlacement(), GAMMA, RandomSource(1))
        rmap = nn.replica_map("f")
        assert len(rmap) == 4
        assert all(len(h) == 2 for h in rmap.values())


class TestPlacementIntegration:
    def test_dead_nodes_excluded(self):
        nn = make_namenode(4)
        nn.mark_dead("n0")
        nn.create_file("f", 40, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        assert nn.block_distribution("f")["n0"] == 0

    def test_physically_down_nodes_excluded(self):
        nn = make_namenode(4)
        nn.datanode("n1").set_up(False)
        nn.create_file("f", 40, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        assert nn.block_distribution("f")["n1"] == 0

    def test_no_liveness_filter_places_on_down_nodes(self):
        # Models data loaded before the measured window (Section V.C).
        nn = make_namenode(4, placement_liveness_filter=False)
        nn.datanode("n1").set_up(False)
        nn.create_file("f", 400, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        assert nn.block_distribution("f")["n1"] > 0

    def test_adapt_placement_uses_predictor(self):
        predictor = PerformancePredictor()
        nn = NameNode(predictor)
        for i in range(2):
            nn.register_datanode(DataNode(f"n{i}"))
        predictor.pin_oracle("n0", AvailabilityEstimate(0.0, 0.0, observations=1))
        predictor.pin_oracle("n1", AvailabilityEstimate(0.1, 8.0, observations=1))
        nn.create_file("f", 200, 10, 1, AdaptPlacement(capped=False), GAMMA, RandomSource(1))
        dist = nn.block_distribution("f")
        assert dist["n0"] > dist["n1"] * 2


class TestAdaptCommand:
    def test_plan_and_apply(self):
        predictor = PerformancePredictor()
        nn = NameNode(predictor)
        for i in range(3):
            nn.register_datanode(DataNode(f"n{i}"))
        predictor.pin_oracle("n0", AvailabilityEstimate(0.0, 0.0, observations=1))
        predictor.pin_oracle("n1", AvailabilityEstimate(0.1, 8.0, observations=1))
        predictor.pin_oracle("n2", AvailabilityEstimate(0.0, 0.0, observations=1))
        nn.create_file("f", 30, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        before = nn.block_distribution("f")["n1"]
        moves = nn.plan_adapt("f", AdaptPlacement(), GAMMA, RandomSource(2))
        for move in moves:
            nn.apply_move(move)
        after = nn.block_distribution("f")["n1"]
        assert after <= before
        # Total replicas preserved.
        assert sum(nn.block_distribution("f").values()) == 30

    def test_apply_move_validation(self):
        nn = make_namenode(2)
        nn.create_file("f", 1, 10, 1, RandomPlacement(), GAMMA, RandomSource(1))
        block_id = nn.file("f").blocks[0].block_id
        holder = next(iter(nn.replica_holders(block_id)))
        other = [n for n in nn.datanode_ids if n != holder][0]
        from repro.core.rebalance import RebalanceMove

        with pytest.raises(ValueError, match="does not hold"):
            nn.apply_move(RebalanceMove(block_id=block_id, source=other, destination=holder))


class TestRackConstraint:
    def rack_of(self, node_id):
        # "n0".."n5" alternate racks by their digit.
        return int(str(node_id)[1:]) % 2

    def test_create_file_spreads_replicas_across_racks(self):
        nn = make_namenode(6)
        nn.set_rack_constraint(self.rack_of)
        f = nn.create_file("f", 30, 1024, 2, RandomPlacement(), GAMMA, RandomSource(1))
        for b in f.blocks:
            racks = {self.rack_of(n) for n in nn.replica_holders(b.block_id)}
            assert len(racks) >= 2

    def test_constraint_can_be_lifted(self):
        nn = make_namenode(6)
        nn.set_rack_constraint(self.rack_of)
        nn.set_rack_constraint(None)
        unconstrained = make_namenode(6)
        a = nn.create_file("f", 20, 1024, 2, RandomPlacement(), GAMMA, RandomSource(1))
        b = unconstrained.create_file(
            "f", 20, 1024, 2, RandomPlacement(), GAMMA, RandomSource(1)
        )
        for block_a, block_b in zip(a.blocks, b.blocks):
            assert nn.replica_holders(block_a.block_id) == unconstrained.replica_holders(
                block_b.block_id
            )
