"""Tests for the DataNode storage model."""

import pytest

from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode


def block(i, size=100):
    return Block(block_id=f"b{i}", file_name="f", index=i, size_bytes=size)


class TestStorage:
    def test_store_and_query(self):
        dn = DataNode("n0")
        dn.store(block(0))
        assert dn.has_block("b0")
        assert dn.block_count == 1
        assert dn.used_bytes == 100

    def test_duplicate_rejected(self):
        dn = DataNode("n0")
        dn.store(block(0))
        with pytest.raises(ValueError, match="already stores"):
            dn.store(block(0))

    def test_remove(self):
        dn = DataNode("n0")
        dn.store(block(0))
        removed = dn.remove("b0")
        assert removed.block_id == "b0"
        assert not dn.has_block("b0")

    def test_remove_missing(self):
        dn = DataNode("n0")
        with pytest.raises(KeyError):
            dn.remove("ghost")

    def test_capacity_enforced(self):
        dn = DataNode("n0", capacity_bytes=250)
        dn.store(block(0))
        dn.store(block(1))
        with pytest.raises(ValueError, match="full"):
            dn.store(block(2))

    def test_blocks_persist_across_downtime(self):
        # "Data blocks are stored on persistent storage and could be reused
        # after the node is back" (Section II.B).
        dn = DataNode("n0")
        dn.store(block(0))
        dn.set_up(False)
        assert dn.has_block("b0")
        dn.set_up(True)
        assert dn.has_block("b0")

    def test_up_state(self):
        dn = DataNode("n0")
        assert dn.is_up
        dn.set_up(False)
        assert not dn.is_up
