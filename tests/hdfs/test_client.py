"""Tests for the HDFS client shell (copyFromLocal / cp / adapt)."""

import pytest

from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import NaivePlacement
from repro.core.predictor import PerformancePredictor
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.util.rng import RandomSource
from repro.util.units import MB


def make_client(n=6, heterogeneous=True):
    predictor = PerformancePredictor()
    nn = NameNode(predictor)
    for i in range(n):
        nn.register_datanode(DataNode(f"n{i}"))
        if heterogeneous and i >= n // 2:
            predictor.pin_oracle(
                f"n{i}", AvailabilityEstimate(arrival_rate=0.1, recovery_mean=8.0, observations=1)
            )
        else:
            predictor.pin_oracle(
                f"n{i}", AvailabilityEstimate(arrival_rate=0.0, recovery_mean=0.0, observations=1)
            )
    return DfsClient(nn, RandomSource(5), default_block_size=64 * MB, default_gamma=12.0)


class TestCopyFromLocal:
    def test_by_num_blocks(self):
        client = make_client()
        f = client.copy_from_local("f", num_blocks=10, replication=1)
        assert f.num_blocks == 10
        assert client.ls() == ["f"]

    def test_by_size_rounds_up(self):
        client = make_client()
        f = client.copy_from_local("f", size_bytes=100 * MB)
        assert f.num_blocks == 2  # 100MB over 64MB blocks

    def test_requires_exactly_one_size_spec(self):
        client = make_client()
        with pytest.raises(ValueError, match="exactly one"):
            client.copy_from_local("f")
        with pytest.raises(ValueError, match="exactly one"):
            client.copy_from_local("f", size_bytes=1, num_blocks=1)

    def test_adapt_flag_skews_distribution(self):
        # The paper's added shell argument: with ADAPT on, reliable nodes
        # receive more blocks than the interrupted half.
        client = make_client()
        client.copy_from_local("plain", num_blocks=600, adapt_enabled=False)
        client.copy_from_local("smart", num_blocks=600, adapt_enabled=True)
        plain = client.block_distribution("plain")
        smart = client.block_distribution("smart")
        reliable = [f"n{i}" for i in range(3)]
        flaky = [f"n{i}" for i in range(3, 6)]
        plain_gap = sum(plain[n] for n in reliable) - sum(plain[n] for n in flaky)
        smart_gap = sum(smart[n] for n in reliable) - sum(smart[n] for n in flaky)
        assert smart_gap > plain_gap + 100

    def test_explicit_policy_overrides_flag(self):
        client = make_client()
        f = client.copy_from_local("f", num_blocks=10, policy=NaivePlacement())
        assert f.num_blocks == 10


class TestCp:
    def test_copy_preserves_shape(self):
        client = make_client()
        client.copy_from_local("src", num_blocks=8, replication=2)
        copy = client.cp("src", "dst", adapt_enabled=True)
        assert copy.num_blocks == 8
        assert copy.replication == 2
        assert set(client.ls()) == {"src", "dst"}

    def test_missing_source(self):
        client = make_client()
        with pytest.raises(KeyError):
            client.cp("ghost", "dst")


class TestAdaptCommand:
    def test_adapt_reduces_flaky_load(self):
        client = make_client()
        client.copy_from_local("f", num_blocks=300, adapt_enabled=False)
        before = client.block_distribution("f")
        report = client.adapt("f")
        after = client.block_distribution("f")
        flaky = [f"n{i}" for i in range(3, 6)]
        assert sum(after[n] for n in flaky) < sum(before[n] for n in flaky)
        assert report.move_count > 0
        assert report.bytes_moved == report.move_count * 64 * MB

    def test_adapt_preserves_replica_count(self):
        client = make_client()
        client.copy_from_local("f", num_blocks=60, replication=2)
        client.adapt("f")
        dist = client.block_distribution("f")
        assert sum(dist.values()) == 120

    def test_storage_skew_metric(self):
        client = make_client(heterogeneous=False)
        client.copy_from_local("f", num_blocks=600)
        skew = client.storage_skew("f")
        assert skew >= 1.0
        assert skew < 2.0  # uniform placement stays near-balanced


class TestRm:
    def test_rm(self):
        client = make_client()
        client.copy_from_local("f", num_blocks=3)
        client.rm("f")
        assert client.ls() == []
