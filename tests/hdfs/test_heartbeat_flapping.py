"""Heartbeat behaviour under rapid flapping (the emulation's regime)."""

import pytest

from repro.hdfs.datanode import DataNode
from repro.hdfs.heartbeat import HeartbeatService
from repro.hdfs.namenode import NameNode
from repro.simulator.engine import Simulator


def setup(interval=3.0, misses=3):
    sim = Simulator()
    nn = NameNode()
    nn.register_datanode(DataNode("n0"))
    hb = HeartbeatService(sim, nn, interval=interval, miss_threshold=misses)
    hb.track("n0")
    return sim, nn, hb


class TestFlapping:
    def test_sub_timeout_flaps_invisible(self):
        # Table 2's MTBI 10s / recovery 4s: every outage is shorter than
        # the 9s timeout, so the NameNode believes the node live forever —
        # exactly what happened on the real testbed with Hadoop's long
        # timeouts.
        sim, nn, hb = setup()
        t = 5.0
        while t < 500.0:
            down_at, up_at = t, t + 4.0
            sim.schedule_at(down_at, lambda d=down_at: hb.node_down("n0", d))
            sim.schedule_at(up_at, lambda u=up_at: hb.node_up("n0", u))
            t += 10.0
        deaths = []
        hb.subscribe(on_dead=lambda n, tt: deaths.append(tt))
        sim.run(until=520.0)
        assert deaths == []
        assert nn.is_live("n0")

    def test_estimator_learns_from_flapping(self):
        sim, nn, hb = setup()
        t = 5.0
        while t < 500.0:
            sim.schedule_at(t, lambda d=t: hb.node_down("n0", d))
            sim.schedule_at(t + 4.0, lambda u=t + 4.0: hb.node_up("n0", u))
            t += 10.0
        sim.run(until=520.0)
        est = nn.predictor.estimate("n0")
        # ~50 episodes of ~4s downtime observed (beat-gap quantised).
        assert est.observations >= 40
        assert est.recovery_mean == pytest.approx(4.0, abs=2.5)
        assert est.mtbi < 60.0

    def test_long_outage_death_and_resurrection_cycle(self):
        sim, nn, hb = setup()
        transitions = []
        hb.subscribe(
            on_dead=lambda n, t: transitions.append(("dead", t)),
            on_returned=lambda n, t: transitions.append(("back", t)),
        )
        for start in (20.0, 100.0):
            sim.schedule_at(start, lambda s=start: hb.node_down("n0", s))
            sim.schedule_at(start + 40.0, lambda s=start: hb.node_up("n0", s + 40.0))
        sim.run(until=200.0)
        kinds = [k for k, _t in transitions]
        assert kinds == ["dead", "back", "dead", "back"]

    def test_down_at_time_zero(self):
        sim, nn, hb = setup()
        hb.node_down("n0", 0.0)
        sim.run(until=30.0)
        assert not nn.is_live("n0")
        hb.node_up("n0", sim.now)
        assert nn.is_live("n0")


class TestIdempotentTransitions:
    def test_double_down_keeps_original_down_since(self):
        # Overlapping chaos outages deliver two downs; the downtime
        # observation must span from the *first* one.
        sim, nn, hb = setup()
        sim.schedule_at(10.0, lambda: hb.node_down("n0", 10.0))
        sim.schedule_at(15.0, lambda: hb.node_down("n0", 15.0))
        sim.schedule_at(30.0, lambda: hb.node_up("n0", 30.0))
        sim.run(until=50.0)
        est = nn.predictor.estimate("n0")
        assert est.recovery_mean == pytest.approx(20.0, rel=1e-3)

    def test_double_up_publishes_one_return(self):
        sim, nn, hb = setup()
        returns = []
        hb.subscribe(on_returned=lambda n, t: returns.append(t))
        sim.schedule_at(10.0, lambda: hb.node_down("n0", 10.0))
        sim.schedule_at(25.0, lambda: hb.node_up("n0", 25.0))
        sim.schedule_at(25.0, lambda: hb.node_up("n0", 25.0))
        sim.run(until=40.0)
        assert returns == [25.0]
        assert nn.is_live("n0")


class TestSuppression:
    """Beats lost in transit: the collector's belief diverges from truth."""

    def test_suppressed_node_declared_dead_while_physically_up(self):
        sim, nn, hb = setup()
        transitions = []
        hb.subscribe(
            on_dead=lambda n, t: transitions.append(("dead", t)),
            on_returned=lambda n, t: transitions.append(("back", t)),
        )
        sim.schedule_at(5.0, lambda: hb.suppress("n0"))
        sim.schedule_at(20.0, lambda: hb.unsuppress("n0"))
        sim.run(until=40.0)
        # Last beat lands at t=3; silence crosses the 9s timeout at t=12.
        # The node never physically went down — unsuppressing beats
        # immediately and belief snaps back.
        assert transitions == [("dead", 12.0), ("back", 20.0)]

    def test_overlapping_suppressions_nest(self):
        sim, nn, hb = setup()
        transitions = []
        hb.subscribe(
            on_dead=lambda n, t: transitions.append(("dead", t)),
            on_returned=lambda n, t: transitions.append(("back", t)),
        )
        sim.schedule_at(5.0, lambda: hb.suppress("n0"))
        sim.schedule_at(6.0, lambda: hb.suppress("n0"))
        sim.schedule_at(20.0, lambda: hb.unsuppress("n0"))
        sim.schedule_at(30.0, lambda: hb.unsuppress("n0"))
        sim.run(until=40.0)
        assert transitions == [("dead", 12.0), ("back", 30.0)]

    def test_unsuppress_while_physically_down_waits_for_return(self):
        sim, nn, hb = setup()
        transitions = []
        hb.subscribe(
            on_dead=lambda n, t: transitions.append(("dead", t)),
            on_returned=lambda n, t: transitions.append(("back", t)),
        )
        sim.schedule_at(5.0, lambda: hb.suppress("n0"))
        sim.schedule_at(8.0, lambda: hb.node_down("n0", 8.0))
        sim.schedule_at(20.0, lambda: hb.unsuppress("n0"))
        sim.schedule_at(25.0, lambda: hb.node_up("n0", 25.0))
        sim.run(until=40.0)
        assert transitions == [("dead", 12.0), ("back", 25.0)]
        # The beat gap reveals the physical downtime only.
        assert nn.predictor.estimate("n0").recovery_mean == pytest.approx(17.0, rel=1e-3)

    def test_suppress_untracked_node_is_noop(self):
        sim, nn, hb = setup()
        hb.suppress("ghost")
        hb.unsuppress("ghost")
        sim.run(until=10.0)
        assert nn.is_live("n0")
