"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures and prints it
(run pytest with ``-s`` to see the tables). By default the sweeps run at a
reduced scale so the whole harness finishes in minutes; set ``REPRO_FULL=1``
to run the paper's scales (128-node emulation, 1024-16384-node simulation —
budget an hour or more).

Shape assertions (who wins, roughly by how much, where trends point) are
made at *both* scales; absolute numbers are expected to differ from the
paper (our substrate is a simulator, not Magellan — see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import EmulationConfig, SimulationConfig, Strategy
from repro.experiments.parallel import SweepExecutor

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: One executor for the whole benchmark session: REPRO_JOBS worker
#: processes (default 1 = serial, identical results either way) and an
#: optional REPRO_CACHE_DIR run cache so re-running the harness after an
#: unrelated edit skips completed cells.
_EXECUTOR: SweepExecutor | None = None


def sweep_executor() -> SweepExecutor:
    """The session-shared sweep executor (env-configured, lazily built)."""
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = SweepExecutor(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)
    return _EXECUTOR

#: Figure 3/4 series (paper order).
EMULATION_STRATEGIES = (
    Strategy("existing", 1),
    Strategy("adapt", 1),
    Strategy("existing", 2),
    Strategy("adapt", 2),
)

#: Figure 5 series (paper order).
SIMULATION_STRATEGIES = (
    Strategy("existing", 1),
    Strategy("existing", 2),
    Strategy("existing", 3),
    Strategy("naive", 1),
    Strategy("adapt", 1),
    Strategy("adapt", 2),
)


def emulation_base(seed: int = 0) -> EmulationConfig:
    """Table 3 defaults, scaled down unless REPRO_FULL=1."""
    if FULL:
        return EmulationConfig(seed=seed)
    return EmulationConfig(node_count=32, blocks_per_node=10, seed=seed)


def emulation_repetitions() -> int:
    """Averaging like the paper's 10-run means; fewer at full scale."""
    return 3 if FULL else 5


def emulation_node_values():
    return (32, 64, 128, 256) if FULL else (16, 32, 64)


def emulation_bandwidth_values():
    return (4.0, 8.0, 16.0, 32.0) if FULL else (4.0, 8.0, 32.0)


def simulation_base(seed: int = 0) -> SimulationConfig:
    """Table 4 defaults, scaled down unless REPRO_FULL=1."""
    if FULL:
        return SimulationConfig(seed=seed)
    return SimulationConfig(node_count=192, tasks_per_node=15, seed=seed)


def simulation_node_values():
    return (1024, 2048, 4096, 8192, 16384) if FULL else (96, 192, 384)


def simulation_bandwidth_values():
    return (4.0, 8.0, 16.0, 32.0) if FULL else (4.0, 8.0, 32.0)


def simulation_block_values():
    from repro.util.units import MB

    return (
        (16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB)
        if FULL
        else (16 * MB, 64 * MB, 256 * MB)
    )


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(autouse=True)
def _print_scale_banner(request):
    scale = "FULL (paper scale)" if FULL else "reduced (set REPRO_FULL=1 for paper scale)"
    executor = sweep_executor()
    print(f"\n[{request.node.name}] scale: {scale} jobs: {executor.jobs}")
    yield
    if executor.cache_dir is not None:
        print(
            f"[{request.node.name}] run cache (session totals): "
            f"{executor.cache_hits} hits / {executor.cache_misses} misses"
        )
