"""Table 1: SETI@home interruption statistics from the synthetic traces.

Paper values: MTBI mean 160290 s, std 701419, CoV 4.376; interruption
duration mean 109380 s, std 807983, CoV 7.3869. The synthetic generator is
calibrated to these pooled statistics; this bench regenerates the table and
asserts the reproduction's shape: pooled means within a factor ~2 and both
CoVs >> 1 (the heterogeneity the whole paper builds on).
"""

import pytest

from benchmarks.conftest import FULL, run_once
from repro.availability.seti import (
    TABLE1_DURATION_COV,
    TABLE1_DURATION_MEAN,
    TABLE1_MTBI_COV,
    TABLE1_MTBI_MEAN,
)
from repro.experiments.largescale import table1_statistics
from repro.util.tables import format_table


def test_table1(benchmark):
    nodes = 2000 if FULL else 500
    horizon = 1.5 * 365 * 86400.0  # the FTA collection window

    stats = run_once(
        benchmark, lambda: table1_statistics(node_count=nodes, horizon=horizon, seed=0)
    )

    rows = [
        ["MTBI (seconds)", f"{stats['mtbi'].mean:.0f}", f"{stats['mtbi'].std:.0f}",
         f"{stats['mtbi'].cov:.3f}", f"{TABLE1_MTBI_MEAN:.0f} / {TABLE1_MTBI_COV}"],
        ["Interruption Duration (seconds)", f"{stats['duration'].mean:.0f}",
         f"{stats['duration'].std:.0f}", f"{stats['duration'].cov:.3f}",
         f"{TABLE1_DURATION_MEAN:.0f} / {TABLE1_DURATION_COV}"],
    ]
    print()
    print(format_table(["", "Mean", "Std Dev", "CoV", "paper mean / CoV"], rows,
                       title="Table 1 (synthetic SETI@home traces)"))

    # Shape assertions: means in the paper's ballpark, CoV >> 1.
    assert stats["mtbi"].mean == pytest.approx(TABLE1_MTBI_MEAN, rel=0.6)
    assert stats["duration"].mean == pytest.approx(TABLE1_DURATION_MEAN, rel=1.0)
    assert stats["mtbi"].cov > 2.0
    assert stats["duration"].cov > 3.0
    benchmark.extra_info["mtbi_mean"] = stats["mtbi"].mean
    benchmark.extra_info["mtbi_cov"] = stats["mtbi"].cov
    benchmark.extra_info["duration_mean"] = stats["duration"].mean
    benchmark.extra_info["duration_cov"] = stats["duration"].cov
