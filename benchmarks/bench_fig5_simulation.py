"""Figure 5: large-scale trace-driven simulation, overhead breakdowns.

Panels: (a) bandwidth, (b) block size, (c) cluster size. Series: existing
x{1,2,3}, naive x1, ADAPT x{1,2}. Metrics: per-component overhead ratios
(rework / recovery / migration / misc) against the aggregate failure-free
execution time.

Asserted paper shapes:
* overhead drops with more replicas and with more bandwidth;
* ADAPT(1) beats existing(1); ADAPT(2) is in the neighbourhood of
  existing(3) ("the same levels of performance with significantly improved
  storage space efficiency");
* ADAPT cuts the migration overhead vs existing at the same replication
  ("ADAPT constantly saves the migration cost by half or more" — we assert
  a >=35% cut to leave room for scale noise);
* misc's share grows with block size ("Misc overhead dominates the
  performance for larger block size").
"""

import pytest

from benchmarks.conftest import (
    SIMULATION_STRATEGIES,
    run_once,
    simulation_bandwidth_values,
    simulation_base,
    simulation_block_values,
    simulation_node_values,
    sweep_executor,
)
from repro.experiments.largescale import (
    sweep_sim_bandwidth,
    sweep_sim_block_size,
    sweep_sim_node_count,
)
from repro.experiments.charts import stacked_overhead_chart
from repro.experiments.reporting import render_overhead_breakdown, render_sweep


def test_fig5a_bandwidth(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_sim_bandwidth(
            simulation_base(), values=simulation_bandwidth_values(),
            strategies=SIMULATION_STRATEGIES, executor=sweep_executor(),
        ),
    )
    print()
    print(render_overhead_breakdown(sweep, title="Figure 5(a): overhead vs bandwidth"))
    print()
    print(stacked_overhead_chart(sweep, sweep.x_values()[0]))
    for bw in sweep.x_values():
        existing1 = sweep.row(bw, "existingx1")
        adapt1 = sweep.row(bw, "adaptx1")
        assert adapt1.overhead("total") < existing1.overhead("total")
        # Migration cut at the same replication degree.
        assert adapt1.overhead("migration") < 0.65 * existing1.overhead("migration")
        # Replication monotonicity for the existing approach.
        assert sweep.row(bw, "existingx3").overhead("total") <= sweep.row(
            bw, "existingx1"
        ).overhead("total")
    # Total overhead decreases with bandwidth for the worst configuration.
    series = sweep.series("existingx1", "total")
    assert series[-1] < series[0]
    # ADAPT(2) in the neighbourhood of existing(3).
    mid = sweep.x_values()[1]
    assert sweep.row(mid, "adaptx2").overhead("total") < 1.6 * sweep.row(
        mid, "existingx3"
    ).overhead("total")


def test_fig5b_block_size(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_sim_block_size(
            simulation_base(), values=simulation_block_values(),
            strategies=SIMULATION_STRATEGIES, executor=sweep_executor(),
        ),
    )
    print()
    print(render_overhead_breakdown(sweep, title="Figure 5(b): overhead vs block size (MB)"))
    xs = sweep.x_values()
    small, large = xs[0], xs[-1]
    # The paper's 5(b) headline: "Misc overhead dominates the performance
    # for larger blocks size" — the misc component must rise steeply with
    # block size (duplicated straggler execution + end-of-phase idling).
    assert sweep.row(large, "existingx1").overhead("misc") > 2.0 * sweep.row(
        small, "existingx1"
    ).overhead("misc")

    def misc_share(x, key):
        row = sweep.row(x, key)
        total = row.overhead("total")
        return row.overhead("misc") / total if total > 0 else 0.0

    assert misc_share(large, "existingx1") > misc_share(small, "existingx1")
    # Larger blocks must not *improve* things materially (the paper finds
    # degradation; our stationary-window recovery floor flattens totals at
    # reduced scale — see EXPERIMENTS.md).
    assert sweep.row(large, "existingx1").overhead("total") > 0.75 * sweep.row(
        small, "existingx1"
    ).overhead("total")
    # ADAPT helps little at large blocks (paper: "helps little to benefit
    # the overall performance" there) but must still not be worse by much.
    assert sweep.row(large, "adaptx1").overhead("total") < 1.1 * sweep.row(
        large, "existingx1"
    ).overhead("total")


def test_fig5c_node_count(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_sim_node_count(
            simulation_base(), values=simulation_node_values(),
            strategies=SIMULATION_STRATEGIES, executor=sweep_executor(),
        ),
    )
    print()
    print(render_overhead_breakdown(sweep, title="Figure 5(c): overhead vs cluster size"))
    for n in sweep.x_values():
        existing1 = sweep.row(n, "existingx1")
        adapt1 = sweep.row(n, "adaptx1")
        assert adapt1.overhead("total") < existing1.overhead("total")
        assert adapt1.overhead("migration") < 0.65 * existing1.overhead("migration")
    # Elapsed-time summary, like the paper's companion narrative.
    print()
    print(render_sweep(sweep, "elapsed", title="Figure 5(c) companion: elapsed seconds"))
