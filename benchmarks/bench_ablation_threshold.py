"""Ablation A2: the Section IV.C threshold cap m(k+1)/n.

The cap trades a little performance for storage fidelity ("the node that
reaches the threshold will not be considered for future data block
placement ... helps to tune the data placement and maintain the user
fidelity"). We measure both sides: map elapsed time AND the storage skew
(max blocks on any node / mean), capped vs uncapped, in two regimes:

* the Table 2 emulation mix (moderate heterogeneity — cap barely binds);
* a SETI trace population (extreme heterogeneity — the cap binds hard,
  bounding skew at the cost of some elapsed time).
"""

import math

import pytest

from benchmarks.conftest import FULL, run_once, simulation_base
from repro.core.placement import AdaptPlacement
from repro.experiments.config import EmulationConfig
from repro.runtime.cluster import build_cluster
from repro.runtime.runner import run_map_phase
from repro.util.tables import format_table


def _skew(hosts, config, policy, blocks_per_node):
    """Max/mean replica count of an ingest under the given policy."""
    cluster = build_cluster(hosts, config, default_gamma=12.0)
    cluster.sim.run(until=0.0)
    cluster.client.copy_from_local(
        "f", num_blocks=int(blocks_per_node * len(hosts)), policy=policy, gamma=12.0
    )
    return cluster.client.storage_skew("f")


def test_threshold_cap(benchmark):
    emu = EmulationConfig(seed=5) if FULL else EmulationConfig(
        node_count=32, blocks_per_node=10, seed=5
    )
    sim = simulation_base(seed=5)

    def run():
        rows = []
        for label, hosts, config, bpn in (
            ("emulation (Table 2)", emu.hosts(), emu.cluster_config(), emu.blocks_per_node),
            ("SETI traces", sim.hosts(), sim.cluster_config(), sim.tasks_per_node),
        ):
            for capped in (True, False):
                policy = AdaptPlacement(capped=capped)
                result = run_map_phase(hosts, config, policy, blocks_per_node=bpn)
                skew = _skew(hosts, config, policy, bpn)
                rows.append((label, capped, result.elapsed, skew))
        return rows

    rows = run_once(benchmark, run)
    table = [
        [label, "on" if capped else "off", f"{elapsed:.1f}", f"{skew:.2f}"]
        for label, capped, elapsed, skew in rows
    ]
    print()
    print(format_table(["regime", "cap m(k+1)/n", "elapsed (s)", "storage skew"],
                       table, title="Ablation A2: threshold cap"))

    by_key = {(label, capped): (elapsed, skew) for label, capped, elapsed, skew in rows}
    # The cap must bound skew at (or below) the uncapped skew in the
    # extreme regime, and the capped skew must respect ~(k+1)-ish bounds.
    seti_capped = by_key[("SETI traces", True)]
    seti_uncapped = by_key[("SETI traces", False)]
    assert seti_capped[1] <= seti_uncapped[1] + 1e-9
    # cap = m(k+1)/n blocks/node => skew <= (k+1) * (n/m) * m/n = k+1 = 2 (+rounding).
    assert seti_capped[1] <= 2.3
