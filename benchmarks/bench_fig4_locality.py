"""Figure 4: data locality in the emulated environment.

Same sweeps as Figure 3, reporting the ratio of local tasks to all tasks.
Paper shapes asserted: ADAPT's locality is at least the existing
approach's everywhere (1 replica); the existing 1-replica locality dips
hardest at ratio 1/2 ("the system has the highest availability variance
when 1/2 nodes are interrupted"); ADAPT keeps a locality edge even at the
highest bandwidth ("a constant advantage of data locality").
"""

import pytest

from benchmarks.conftest import (
    EMULATION_STRATEGIES,
    emulation_bandwidth_values,
    emulation_base,
    emulation_node_values,
    emulation_repetitions,
    run_once,
    sweep_executor,
)
from repro.experiments.emulation import (
    sweep_bandwidth,
    sweep_interrupted_ratio,
    sweep_node_count,
)
from repro.experiments.reporting import render_sweep


def test_fig4a_interrupted_ratio(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_interrupted_ratio(
            emulation_base(), values=(0.25, 0.5, 0.75), strategies=EMULATION_STRATEGIES,
            repetitions=emulation_repetitions(), executor=sweep_executor(),
        ),
    )
    print()
    print(render_sweep(sweep, "locality", title="Figure 4(a): locality vs interrupted ratio"))
    for ratio in sweep.x_values():
        assert (
            sweep.row(ratio, "adaptx1").locality
            >= sweep.row(ratio, "existingx1").locality - 0.02
        )
    # ADAPT's locality is stable across ratios (paper: "stable data
    # locality regardless of the interrupted nodes ratio").
    adapt = sweep.series("adaptx1", "locality")
    assert max(adapt) - min(adapt) < 0.12


def test_fig4b_bandwidth(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_bandwidth(
            emulation_base(), values=emulation_bandwidth_values(), strategies=EMULATION_STRATEGIES,
            repetitions=emulation_repetitions(), executor=sweep_executor(),
        ),
    )
    print()
    print(render_sweep(sweep, "locality", title="Figure 4(b): locality vs bandwidth"))
    # Constant locality advantage for ADAPT even at high bandwidth.
    hi = sweep.x_values()[-1]
    assert sweep.row(hi, "adaptx1").locality >= sweep.row(hi, "existingx1").locality


def test_fig4c_node_count(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_node_count(
            emulation_base(), values=emulation_node_values(), strategies=EMULATION_STRATEGIES,
            repetitions=emulation_repetitions(), executor=sweep_executor(),
        ),
    )
    print()
    print(render_sweep(sweep, "locality", title="Figure 4(c): locality vs cluster size"))
    for nodes in sweep.x_values():
        assert (
            sweep.row(nodes, "adaptx1").locality
            >= sweep.row(nodes, "existingx1").locality - 0.02
        )
