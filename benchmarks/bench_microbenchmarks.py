"""Engine and placement micro-benchmarks (simulator capacity planning).

Not a paper figure: these measure the substrate itself — event-loop
throughput, flow-level network reallocation, and per-policy placement
decision rates — so regressions in the hot paths are visible.
"""

import time
from collections import defaultdict

import pytest

from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import AdaptPlacement, NodeView, RandomPlacement
from repro.simulator.engine import Simulator
from repro.simulator.network import Network
from repro.util.rng import RandomSource


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost of a trivial event chain."""

    def run():
        sim = Simulator()
        count = 50_000
        state = {"left": count}

        def tick():
            state["left"] -= 1
            if state["left"] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 50_000


def test_network_fair_share_reallocation(benchmark):
    """Max-min reallocation with dozens of concurrent flows."""

    def run():
        sim = Simulator()
        net = Network(sim, uplink_bps=1e6, fair_sharing=True)
        done = []
        for i in range(60):
            net.start_transfer(f"s{i % 6}", f"d{i}", 1e6, done.append)
        sim.run()
        return len(done)

    completed = benchmark(run)
    assert completed == 60


def _reference_allocate_rates(net):
    """The pre-optimization progressive-filling allocator, kept verbatim.

    Re-scans every link's membership against the unfixed set on each
    round — O(flows²·links) — where the live version maintains per-link
    live-member counters. Used only to measure the speedup and to check
    the optimized allocator still produces identical rates.
    """
    if not net._active:
        return {}
    capacity = {}
    members = defaultdict(list)
    for transfer in net._active:
        up = ("up", transfer.source)
        down = ("down", transfer.destination)
        capacity.setdefault(up, net.uplink(transfer.source))
        capacity.setdefault(down, net.downlink(transfer.destination))
        members[up].append(transfer)
        members[down].append(transfer)
    unfixed = set(net._active)
    rates = {}
    while unfixed:
        bottleneck = None
        bottleneck_share = None
        for link, users in members.items():
            live = sum(1 for u in users if u in unfixed)
            if not live:
                continue
            share = max(capacity[link], 0.0) / live
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck = link
        if bottleneck is None:
            break
        for transfer in [t for t in members[bottleneck] if t in unfixed]:
            rates[transfer] = bottleneck_share
            unfixed.discard(transfer)
            up = ("up", transfer.source)
            down = ("down", transfer.destination)
            for link in (up, down):
                if link != bottleneck:
                    capacity[link] -= bottleneck_share
        capacity[bottleneck] = 0.0
    return rates


def _allocator_workload():
    """64 concurrent flows whose shares all differ, so progressive filling
    fixes one flow per round — the allocator's worst case."""
    sim = Simulator()
    net = Network(sim, uplink_bps=1e9, fair_sharing=True)
    for i in range(64):
        net.set_link(f"d{i}", downlink_bps=1e5 * (i + 1))
    for i in range(64):
        # One shared source: its uplink membership is scanned every round
        # by the reference allocator.
        net.start_transfer("src", f"d{i}", 1e15, lambda t: None)
    return net


def test_allocate_rates_matches_reference():
    """The counter-based allocator must produce bit-identical rates."""
    net = _allocator_workload()
    expected = _reference_allocate_rates(net)
    net._allocate_rates()
    for transfer in net._active:
        assert transfer.rate == max(expected.get(transfer, 0.0), 0.0)


def test_allocate_rates_speedup_64_flows(benchmark):
    """Hot-path check: counter-based allocation >=2x the naive rescan."""
    net = _allocator_workload()
    rounds = 30

    def optimized():
        for _ in range(rounds):
            net._allocate_rates()

    def reference():
        for _ in range(rounds):
            _reference_allocate_rates(net)

    # Manual best-of-N timing for the reference (pytest-benchmark can only
    # time one subject per test); the optimized path goes through the
    # benchmark fixture so it lands in the saved timings too.
    ref_best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        reference()
        ref_best = min(ref_best, time.perf_counter() - start)
    benchmark(optimized)
    opt_best = benchmark.stats.stats.min
    speedup = ref_best / opt_best
    benchmark.extra_info["reference_seconds"] = ref_best
    benchmark.extra_info["speedup_vs_reference"] = speedup
    print(f"\n_allocate_rates @64 flows: reference={ref_best:.4f}s "
          f"optimized={opt_best:.4f}s speedup={speedup:.1f}x")
    assert speedup >= 2.0


def test_placement_decision_rate(benchmark):
    """ADAPT placement decisions for a 256-node, 5120-block ingest."""
    views = [
        NodeView(
            f"n{i}",
            AvailabilityEstimate(
                arrival_rate=0.0 if i % 2 == 0 else 0.05,
                recovery_mean=0.0 if i % 2 == 0 else 4.0,
                observations=1,
            ),
        )
        for i in range(256)
    ]

    def run():
        plan = AdaptPlacement().build_plan(views, 5120, 1, 12.0)
        rng = RandomSource(1)
        for _ in range(5120):
            plan.choose_replicas(rng)
        return sum(plan.allocations().values())

    total = benchmark(run)
    assert total == 5120


def test_random_placement_decision_rate(benchmark):
    """Baseline: stock random placement at the same scale."""
    views = [
        NodeView(f"n{i}", AvailabilityEstimate(0.0, 0.0, 1)) for i in range(256)
    ]

    def run():
        plan = RandomPlacement().build_plan(views, 5120, 1, 12.0)
        rng = RandomSource(1)
        for _ in range(5120):
            plan.choose_replicas(rng)
        return sum(plan.allocations().values())

    total = benchmark(run)
    assert total == 5120
