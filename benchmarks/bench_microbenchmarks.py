"""Engine and placement micro-benchmarks (simulator capacity planning).

Not a paper figure: these measure the substrate itself — event-loop
throughput, flow-level network reallocation, and per-policy placement
decision rates — so regressions in the hot paths are visible.
"""

import pytest

from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import AdaptPlacement, NodeView, RandomPlacement
from repro.simulator.engine import Simulator
from repro.simulator.network import Network
from repro.util.rng import RandomSource


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost of a trivial event chain."""

    def run():
        sim = Simulator()
        count = 50_000
        state = {"left": count}

        def tick():
            state["left"] -= 1
            if state["left"] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 50_000


def test_network_fair_share_reallocation(benchmark):
    """Max-min reallocation with dozens of concurrent flows."""

    def run():
        sim = Simulator()
        net = Network(sim, uplink_bps=1e6, fair_sharing=True)
        done = []
        for i in range(60):
            net.start_transfer(f"s{i % 6}", f"d{i}", 1e6, done.append)
        sim.run()
        return len(done)

    completed = benchmark(run)
    assert completed == 60


def test_placement_decision_rate(benchmark):
    """ADAPT placement decisions for a 256-node, 5120-block ingest."""
    views = [
        NodeView(
            f"n{i}",
            AvailabilityEstimate(
                arrival_rate=0.0 if i % 2 == 0 else 0.05,
                recovery_mean=0.0 if i % 2 == 0 else 4.0,
                observations=1,
            ),
        )
        for i in range(256)
    ]

    def run():
        plan = AdaptPlacement().build_plan(views, 5120, 1, 12.0)
        rng = RandomSource(1)
        for _ in range(5120):
            plan.choose_replicas(rng)
        return sum(plan.allocations().values())

    total = benchmark(run)
    assert total == 5120


def test_random_placement_decision_rate(benchmark):
    """Baseline: stock random placement at the same scale."""
    views = [
        NodeView(f"n{i}", AvailabilityEstimate(0.0, 0.0, 1)) for i in range(256)
    ]

    def run():
        plan = RandomPlacement().build_plan(views, 5120, 1, 12.0)
        rng = RandomSource(1)
        for _ in range(5120):
            plan.choose_replicas(rng)
        return sum(plan.allocations().values())

    total = benchmark(run)
    assert total == 5120
