"""Benchmark harness: one module per paper table/figure plus ablations.

Run with ``pytest benchmarks/ --benchmark-only -s`` (add ``REPRO_FULL=1``
for paper-scale sweeps). Each module prints the regenerated table and
asserts the paper's qualitative shape.
"""
