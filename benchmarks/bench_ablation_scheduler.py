"""Ablation A3: availability-aware scheduling (the paper's future work).

Measures the 2x2 of {placement} x {scheduler} on the emulation mix. The
paper conjectures "there is a performance improvement space by developing
availability-aware MapReduce scheduling algorithms"; this quantifies it on
top of both placements.
"""

import pytest

from benchmarks.conftest import FULL, emulation_base, emulation_repetitions, run_once
from repro.mapreduce.job import JobConf
from repro.runtime.runner import run_map_phase
from repro.util.stats import mean
from repro.util.tables import format_table


def test_scheduler_matrix(benchmark):
    reps = emulation_repetitions()

    def run():
        cells = {}
        for policy in ("existing", "adapt"):
            for scheduler in ("locality", "availability"):
                elapsed = []
                for rep in range(reps):
                    base = emulation_base(seed=300 + rep)
                    result = run_map_phase(
                        base.hosts(),
                        base.cluster_config(),
                        policy,
                        blocks_per_node=base.blocks_per_node,
                        job_conf=JobConf(scheduler=scheduler),
                    )
                    elapsed.append(result.elapsed)
                cells[(policy, scheduler)] = mean(elapsed)
        return cells

    cells = run_once(benchmark, run)
    rows = [
        [policy, scheduler, f"{value:.1f}"]
        for (policy, scheduler), value in sorted(cells.items())
    ]
    print()
    print(format_table(["placement", "scheduler", "mean elapsed (s)"], rows,
                       title="Ablation A3: availability-aware scheduling"))

    # Placement is the first-order effect: ADAPT placement with the stock
    # scheduler beats stock placement even with the smarter scheduler.
    assert cells[("adapt", "locality")] < cells[("existing", "availability")]
    # The scheduler extension must not catastrophically hurt either way.
    assert cells[("adapt", "availability")] < 1.5 * cells[("adapt", "locality")]
    benchmark.extra_info["cells"] = {f"{p}/{s}": v for (p, s), v in cells.items()}
