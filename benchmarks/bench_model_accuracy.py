"""Ablation A4: accuracy of formula (5) against simulation.

Two comparisons:

1. model vs a Monte-Carlo replay of the literal attempt process (validates
   the derivation itself);
2. model vs the *full cluster simulator*: per-node throughput of an
   isolated node processing its local blocks under injected interruptions
   should match 1/E[T] (validates that the simulator implements the
   semantics the model assumes).
"""

import math

import pytest

from benchmarks.conftest import FULL, run_once
from repro.availability.generator import HostAvailability, build_group_hosts, table2_groups
from repro.core.model import expected_task_time, monte_carlo_task_time
from repro.core.placement import RandomPlacement
from repro.mapreduce.job import JobConf, MapJob
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.util.rng import RandomSource
from repro.util.tables import format_table

GAMMA = 12.0


def test_model_vs_monte_carlo(benchmark):
    samples = 20000 if FULL else 4000

    def run():
        rows = []
        for group in table2_groups():
            lam = group.arrival_rate
            predicted = expected_task_time(GAMMA, lam, group.service_mean)
            stats = monte_carlo_task_time(
                GAMMA, lam, RandomSource(1).substream(group.name),
                mu=group.service_mean, samples=samples,
            )
            rows.append((group.name, predicted, stats.mean, stats.std / math.sqrt(stats.count)))
        return rows

    rows = run_once(benchmark, run)
    table = [
        [name, f"{pred:.2f}", f"{measured:.2f}", f"{(measured / pred - 1) * 100:+.1f}%"]
        for name, pred, measured, _se in rows
    ]
    print()
    print(format_table(["group", "E[T] formula 5", "Monte-Carlo", "error"], table,
                       title="Ablation A4.1: model vs literal attempt process"))
    for name, pred, measured, se in rows:
        assert abs(measured - pred) < 4 * se + 0.05 * pred, name


def test_model_vs_cluster_simulator(benchmark):
    """One interrupted node processing blocks serially: makespan ~ m*E[T]."""
    blocks = 120 if FULL else 40

    def run():
        rows = []
        for group in table2_groups():
            host = build_group_hosts(1, 1.0, groups=[group])[0]
            cluster = build_cluster(
                [host],
                ClusterConfig(seed=5, detection="oracle", speculation_enabled=False),
                default_gamma=GAMMA,
            )
            f = cluster.client.copy_from_local(
                "in", num_blocks=blocks, policy=RandomPlacement(), gamma=GAMMA
            )
            job = MapJob.uniform(JobConf(speculative=False), f, GAMMA)
            cluster.jobtracker.submit(job)
            cluster.run_until_job_done()
            predicted = blocks * expected_task_time(GAMMA, group.arrival_rate, group.service_mean)
            rows.append((group.name, predicted, job.makespan))
        return rows

    rows = run_once(benchmark, run)
    table = [
        [name, f"{pred:.0f}", f"{measured:.0f}", f"{(measured / pred - 1) * 100:+.1f}%"]
        for name, pred, measured in rows
    ]
    print()
    print(format_table(
        ["group", f"{('120' if FULL else '40')} blocks x E[T]", "simulated makespan", "error"],
        table,
        title="Ablation A4.2: model vs full cluster simulator (single node)",
    ))
    for name, pred, measured in rows:
        # One sample path of a heavy-tailed sum: generous band.
        assert measured == pytest.approx(pred, rel=0.5), name
