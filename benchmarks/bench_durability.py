"""Durability sweep: replication factor x permanent-failure rate.

The paper models interruptions as recoverable ("data blocks are stored on
persistent storage and could be reused after the node is back"), but real
non-dedicated hosts also *leave* — volunteers quit, disks die. This
benchmark turns on the durability pipeline (permanent-failure injection +
the re-replication monitor) and sweeps replication factor against the
per-host permanent-loss probability for each placement policy, reporting
the costs the paper's experiments never pay: blocks lost for good,
re-replication traffic, and the makespan impact of recovery copies
contending with job reads.

Note that the monitor also heals through *transient* interruptions — it
cannot know a detected-dead node will come back, exactly like HDFS
re-replicating after its dead-node timeout — so re-replication traffic is
nonzero even at permanent-failure rate zero whenever replication >= 2.

Expectations asserted:

* with replication 1 a permanent failure destroys data — no amount of
  healing can recover a block whose only replica is gone;
* replication >= 2 plus the monitor loses strictly fewer blocks than
  replication 1 under the same failure schedule (zero loss is *not*
  guaranteed: two permanent failures landing close together can destroy
  both replicas of a block before healing finishes — only the
  single-node-loss guarantee, covered by the integration tests, is
  absolute);
* re-replication moves bytes whenever replication >= 2 (healing through
  interruptions), and never at replication 1 (a block's sole replica has
  no surviving source to copy from).
"""

from dataclasses import replace

from benchmarks.conftest import FULL, emulation_base, run_once
from repro.runtime.runner import run_map_phase
from repro.util.stats import mean
from repro.util.tables import format_table

POLICIES = ("existing", "naive", "adapt")
REPLICATIONS = (1, 2, 3) if FULL else (1, 2)
FAILURE_RATES = (0.0, 0.05, 0.15) if FULL else (0.0, 0.1)
REPETITIONS = 3 if FULL else 2


def test_durability_sweep(benchmark):
    def run():
        cells = {}
        for policy in POLICIES:
            for replication in REPLICATIONS:
                for rate in FAILURE_RATES:
                    elapsed, lost, rebytes, retries = [], [], [], []
                    for rep in range(REPETITIONS):
                        base = emulation_base(seed=900 + rep)
                        config = replace(
                            base.cluster_config(),
                            replication_monitor=True,
                            permanent_failure_rate=rate,
                            permanent_failure_horizon=300.0,
                        )
                        result = run_map_phase(
                            base.hosts(),
                            config,
                            policy,
                            replication=replication,
                            blocks_per_node=base.blocks_per_node,
                        )
                        durability = result.durability
                        assert durability is not None
                        elapsed.append(result.elapsed)
                        lost.append(durability.blocks_lost)
                        rebytes.append(durability.rereplication_bytes)
                        retries.append(durability.degraded_read_retries)
                    cells[(policy, replication, rate)] = {
                        "elapsed": mean(elapsed),
                        "blocks_lost": mean(lost),
                        "rereplication_mb": mean(rebytes) / (1024.0 * 1024.0),
                        "degraded_read_retries": mean(retries),
                    }
        return cells

    cells = run_once(benchmark, run)
    rows = [
        [
            policy,
            replication,
            f"{rate:.2f}",
            f"{cell['elapsed']:.1f}",
            f"{cell['blocks_lost']:.1f}",
            f"{cell['rereplication_mb']:.0f}",
            f"{cell['degraded_read_retries']:.1f}",
        ]
        for (policy, replication, rate), cell in sorted(cells.items())
    ]
    print()
    print(
        format_table(
            [
                "policy",
                "replicas",
                "perm rate",
                "makespan (s)",
                "blocks lost",
                "re-repl (MB)",
                "read retries",
            ],
            rows,
            title="Durability: replication x permanent-failure rate",
        )
    )

    top_rate = max(FAILURE_RATES)
    for policy in POLICIES:
        # Unreplicated data dies; replication + healing limits the damage.
        lost_r1 = cells[(policy, 1, top_rate)]["blocks_lost"]
        lost_r2 = cells[(policy, 2, top_rate)]["blocks_lost"]
        assert lost_r1 > 0.0, policy
        assert lost_r2 < lost_r1, policy
        # Healing needs a surviving source: traffic iff replication >= 2.
        for rate in FAILURE_RATES:
            assert cells[(policy, 1, rate)]["rereplication_mb"] == 0.0, policy
        assert cells[(policy, 2, top_rate)]["rereplication_mb"] > 0.0, policy
