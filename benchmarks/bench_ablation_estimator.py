"""Ablation A1: oracle (lambda, mu) vs heartbeat-estimated parameters.

Algorithm 1 takes "the measured interruption arrival rate lambda [and]
interruption service time mu" as inputs. How much does ADAPT lose when the
Performance Predictor must *learn* them from heartbeats instead of knowing
them exactly? We warm the estimators for 10 simulated minutes (the paper's
NameNode accumulates them continuously in production), then ingest and run.
"""

import pytest

from benchmarks.conftest import FULL, run_once
from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.runtime.runner import run_map_phase
from repro.util.tables import format_table


def test_oracle_vs_estimated(benchmark):
    base = EmulationConfig(seed=3) if FULL else EmulationConfig(
        node_count=32, blocks_per_node=10, seed=3
    )
    hosts = base.hosts()

    def run():
        results = {}
        results["existing"] = run_map_phase(
            hosts, base.cluster_config(), "existing", blocks_per_node=base.blocks_per_node
        )
        results["adapt (oracle)"] = run_map_phase(
            hosts, base.cluster_config(), "adapt", blocks_per_node=base.blocks_per_node
        )
        estimated_config = base.cluster_config()
        from dataclasses import replace

        estimated_config = replace(estimated_config, oracle_estimates=False)
        results["adapt (estimated)"] = run_map_phase(
            hosts,
            estimated_config,
            "adapt",
            blocks_per_node=base.blocks_per_node,
            warmup_seconds=600.0,
        )
        return results

    results = run_once(benchmark, run)
    rows = [
        [name, f"{r.elapsed:.1f}", f"{r.data_locality:.3f}"]
        for name, r in results.items()
    ]
    print()
    print(format_table(["configuration", "elapsed (s)", "locality"], rows,
                       title="Ablation A1: oracle vs heartbeat-estimated parameters"))

    # Estimated ADAPT must retain most of the oracle's win over existing.
    existing = results["existing"].elapsed
    oracle = results["adapt (oracle)"].elapsed
    estimated = results["adapt (estimated)"].elapsed
    assert oracle < existing
    assert estimated < existing  # still clearly better than random
    # And be within 2x of the oracle's improvement.
    assert (existing - estimated) > 0.4 * (existing - oracle)
