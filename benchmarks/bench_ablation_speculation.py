"""Ablation A5: speculative execution's interaction with placement.

Speculation rescues tasks stranded on silently-dead nodes (the "duplicated
straggler execution" the paper charges to misc). How much of each policy's
performance depends on it? Expectation: the existing placement leans on
speculation much harder than ADAPT, because random placement strands more
work on doomed nodes.
"""

import pytest

from benchmarks.conftest import emulation_base, emulation_repetitions, run_once
from repro.runtime.runner import run_map_phase
from repro.util.stats import mean
from repro.util.tables import format_table
from dataclasses import replace


def test_speculation_interaction(benchmark):
    reps = emulation_repetitions()

    def run():
        cells = {}
        for policy in ("existing", "adapt"):
            for spec in (True, False):
                elapsed = []
                for rep in range(reps):
                    base = emulation_base(seed=500 + rep)
                    config = replace(base.cluster_config(), speculation_enabled=spec)
                    result = run_map_phase(
                        base.hosts(), config, policy, blocks_per_node=base.blocks_per_node
                    )
                    elapsed.append(result.elapsed)
                cells[(policy, spec)] = mean(elapsed)
        return cells

    cells = run_once(benchmark, run)
    rows = [
        [policy, "on" if spec else "off", f"{value:.1f}"]
        for (policy, spec), value in sorted(cells.items())
    ]
    print()
    print(format_table(["placement", "speculation", "mean elapsed (s)"], rows,
                       title="Ablation A5: speculation x placement"))

    # ADAPT beats existing regardless of speculation: placement, not
    # straggler duplication, is the first-order effect.
    assert cells[("adapt", True)] < cells[("existing", True)]
    assert cells[("adapt", False)] < cells[("existing", False)]
    # Speculation changes either policy by less than ~2x in either
    # direction. (Reproduction finding: naive duplicate execution can
    # actually *hurt* the existing placement here — duplicated fetches
    # compete for the flaky holders' thin uplinks, echoing the pathology
    # LATE [19] was designed to fix.)
    for policy in ("existing", "adapt"):
        ratio = cells[(policy, False)] / cells[(policy, True)]
        assert 0.5 < ratio < 2.0, (policy, ratio)
    existing_loss = cells[("existing", False)] / cells[("existing", True)]
    adapt_loss = cells[("adapt", False)] / cells[("adapt", True)]
    print(f"\nslowdown from disabling speculation: existing {existing_loss:.2f}x, "
          f"adapt {adapt_loss:.2f}x")
