"""Figure 3: map-phase elapsed time in the emulated environment.

Panels: (a) interrupted-node ratio 1/4-3/4, (b) bandwidth 4-32 Mb/s,
(c) cluster size. Series: existing/ADAPT x {1,2} replicas. The headline
check (Section V.B.1) asserts ADAPT(1) improves on existing(1) by >=30% at
the default point, and that existing(2) is competitive with ADAPT(1) — the
paper's storage-efficiency trade-off.
"""

import pytest

from benchmarks.conftest import (
    EMULATION_STRATEGIES,
    emulation_bandwidth_values,
    emulation_base,
    emulation_node_values,
    emulation_repetitions,
    run_once,
    sweep_executor,
)
from repro.experiments.config import Strategy
from repro.experiments.emulation import (
    run_emulation_point,
    sweep_bandwidth,
    sweep_interrupted_ratio,
    sweep_node_count,
)
from repro.experiments.reporting import render_sweep


def test_fig3a_interrupted_ratio(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_interrupted_ratio(
            emulation_base(), values=(0.25, 0.5, 0.75), strategies=EMULATION_STRATEGIES,
            repetitions=emulation_repetitions(), executor=sweep_executor(),
        ),
    )
    print()
    print(render_sweep(sweep, "elapsed", title="Figure 3(a): elapsed time vs interrupted ratio"))
    # Shape: ADAPT(1) beats existing(1) at every ratio.
    for ratio in sweep.x_values():
        assert sweep.row(ratio, "adaptx1").elapsed < sweep.row(ratio, "existingx1").elapsed
    # Shape: 2 replicas beat 1 replica for the existing approach.
    for ratio in sweep.x_values():
        assert sweep.row(ratio, "existingx2").elapsed < sweep.row(ratio, "existingx1").elapsed


def test_fig3b_bandwidth(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_bandwidth(
            emulation_base(), values=emulation_bandwidth_values(), strategies=EMULATION_STRATEGIES,
            repetitions=emulation_repetitions(), executor=sweep_executor(),
        ),
    )
    print()
    print(render_sweep(sweep, "elapsed", title="Figure 3(b): elapsed time vs bandwidth"))
    xs = sweep.x_values()
    lo, hi = xs[0], xs[-1]
    # Shape: ADAPT's advantage over existing shrinks as bandwidth grows
    # ("its benefit decreases as the network bandwidth goes up").
    gain_lo = sweep.row(lo, "existingx1").elapsed / sweep.row(lo, "adaptx1").elapsed
    gain_hi = sweep.row(hi, "existingx1").elapsed / sweep.row(hi, "adaptx1").elapsed
    assert gain_lo > gain_hi
    assert gain_lo > 1.0
    # Shape: more bandwidth never hurts the existing approach materially.
    series = sweep.series("existingx1", "elapsed")
    assert series[-1] < series[0]


def test_fig3c_node_count(benchmark):
    sweep = run_once(
        benchmark,
        lambda: sweep_node_count(
            emulation_base(), values=emulation_node_values(), strategies=EMULATION_STRATEGIES,
            repetitions=emulation_repetitions(), executor=sweep_executor(),
        ),
    )
    print()
    print(render_sweep(sweep, "elapsed", title="Figure 3(c): elapsed time vs cluster size"))
    # Shape: ADAPT(1) stays ahead of existing(1) at every size, and its
    # elapsed time is more stable across sizes (paper: "relatively stable
    # performance across all system sizes").
    adapt = sweep.series("adaptx1", "elapsed")
    existing = sweep.series("existingx1", "elapsed")
    for a, e in zip(adapt, existing, strict=True):
        assert a < e
    assert max(adapt) / min(adapt) < max(existing) / min(existing) + 1.0


def test_headline_improvement(benchmark):
    """Section V.B.1: >=30% mean improvement at the Table 3 default point.

    Averaged over several seeds, like the paper's 10-run means — a single
    small-cluster realisation is far too noisy to compare policies.
    """
    reps = emulation_repetitions()

    def run():
        existing_total = adapt_total = 0.0
        for rep in range(reps):
            config = emulation_base(seed=100 + rep)
            executor = sweep_executor()
            existing_total += run_emulation_point(
                config, Strategy("existing", 1), executor=executor
            ).elapsed
            adapt_total += run_emulation_point(
                config, Strategy("adapt", 1), executor=executor
            ).elapsed
        return existing_total / reps, adapt_total / reps

    existing, adapt = run_once(benchmark, run)
    improvement = 1.0 - adapt / existing
    print(f"\nheadline (mean of {reps} runs): existing(1)={existing:.1f}s "
          f"adapt(1)={adapt:.1f}s improvement={improvement:.0%} "
          f"(paper: 40% at 128 nodes)")
    assert improvement >= 0.30
    benchmark.extra_info["improvement"] = improvement
